//! Continuous queries over a mutable graph: standing queries whose
//! embedding sets are incrementally *repaired* per update batch.
//!
//! A [`ContinuousMatcher`] owns one [`DynamicGraph`] and a set of registered
//! standing queries, each with its materialized embedding set. Applying an
//! update batch runs the repair step per query instead of a full re-query:
//!
//! 1. **Invalidation.** A stored embedding can only break if the batch
//!    touched one of its images (removed a mapped vertex or an edge between
//!    two mapped vertices — both endpoints of a removed edge are in the
//!    touched set). Embeddings disjoint from the touched region are kept
//!    without any work; intersecting ones are re-verified against the
//!    post-batch overlay.
//! 2. **Addition.** Any embedding that is new after the batch must map some
//!    query edge onto an edge added by the batch, or some query vertex onto
//!    a vertex added by the batch. Seeding
//!    [`enumerate_seeded`](sqp_matching::dynmatch::enumerate_seeded) with
//!    every (query edge → added edge) and (query vertex → added vertex)
//!    label-compatible pin therefore enumerates a superset of the additions;
//!    deduplication against the kept set leaves exactly the new ones.
//!
//! The result of a batch is a delta stream ([`RepairDelta`] per standing
//! query) plus the repaired sets, which invariant **I10** (DESIGN.md §11)
//! pins to full recomputation: `repaired ≡ enumerate_overlay(q, g)` after
//! every batch, at every thread count. Repair parallelism is slot-indexed
//! (queries are distributed to workers by an atomic cursor but results land
//! in their query's slot), so output is byte-identical at 1/2/4/8 threads.
//!
//! [`ContinuousService`] wraps the matcher in a `RwLock` for interleaved
//! update/query traffic with snapshot-consistent reads, and exports the
//! update/compaction/repair counters rendered by
//! [`exposition::render_continuous`](crate::exposition::render_continuous).
//! [`DynamicDb`] applies the same discipline to a whole database with an
//! incrementally-maintained fingerprint (IFV) index.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use sqp_graph::database::GraphId;
use sqp_graph::{
    BatchEffects, CompactionPolicy, DynamicGraph, Graph, GraphDb, GraphError, LabelInterner,
    Update, VertexId,
};
use sqp_index::budget::{BuildBudget, BuildError};
use sqp_index::fingerprint::FingerprintIndex;
use sqp_index::{CandidateGraphs, GraphIndex};
use sqp_matching::dynmatch::{enumerate_overlay, SeededEnumerator};
use sqp_matching::{Deadline, Embedding, Timeout};

/// A registered standing query with its maintained embedding set.
#[derive(Clone, Debug)]
pub struct StandingQuery {
    /// Registration id, unique within the matcher.
    pub id: u64,
    /// The query graph.
    pub query: Graph,
    /// Current embeddings, sorted lexicographically by mapping.
    embeddings: Vec<Embedding>,
}

impl StandingQuery {
    /// The maintained embedding set (sorted lexicographically by mapping).
    pub fn embeddings(&self) -> &[Embedding] {
        &self.embeddings
    }
}

/// Additions and invalidations of one standing query under one batch — the
/// unit of the delta stream.
#[derive(Clone, Debug)]
pub struct RepairDelta {
    /// The standing query this delta belongs to.
    pub query_id: u64,
    /// Embeddings that became valid with this batch (sorted).
    pub added: Vec<Embedding>,
    /// Embeddings invalidated by this batch (sorted).
    pub removed: Vec<Embedding>,
}

/// Outcome of applying one update batch.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Updates that changed the graph (duplicate edge adds excluded).
    pub applied: usize,
    /// Vertices whose adjacency/liveness changed.
    pub touched: usize,
    /// Per-standing-query delta stream, in registration order.
    pub deltas: Vec<RepairDelta>,
    /// Whether this batch triggered a compaction.
    pub compacted: bool,
}

impl BatchReport {
    /// Total embeddings added across all standing queries.
    pub fn total_added(&self) -> usize {
        self.deltas.iter().map(|d| d.added.len()).sum()
    }

    /// Total embeddings invalidated across all standing queries.
    pub fn total_removed(&self) -> usize {
        self.deltas.iter().map(|d| d.removed.len()).sum()
    }
}

/// Why a batch failed.
#[derive(Debug)]
pub enum BatchError {
    /// The batch was malformed; the overlay is untouched (atomic reject).
    Graph(GraphError),
    /// Repair ran out of deadline. The graph mutation is applied but no
    /// standing set was modified; re-register or re-run with a larger
    /// budget to reconverge.
    Timeout,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Graph(e) => write!(f, "malformed update batch: {e}"),
            BatchError::Timeout => write!(f, "continuous repair timed out"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Graph(e) => Some(e),
            BatchError::Timeout => None,
        }
    }
}

impl From<GraphError> for BatchError {
    fn from(e: GraphError) -> Self {
        BatchError::Graph(e)
    }
}

impl From<Timeout> for BatchError {
    fn from(_: Timeout) -> Self {
        BatchError::Timeout
    }
}

/// Standing queries over one mutable graph, repaired per batch.
#[derive(Debug)]
pub struct ContinuousMatcher {
    graph: DynamicGraph,
    queries: Vec<StandingQuery>,
    next_id: u64,
    policy: CompactionPolicy,
    compactions: u64,
}

/// Result of repairing one standing query.
struct RepairOutcome {
    new_set: Vec<Embedding>,
    added: Vec<Embedding>,
    removed: Vec<Embedding>,
}

fn sort_embeddings(es: &mut [Embedding]) {
    es.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
}

fn contains_sorted(set: &[Embedding], e: &Embedding) -> bool {
    set.binary_search_by(|probe| probe.as_slice().cmp(e.as_slice())).is_ok()
}

/// Whether a stored embedding is still an embedding of `q` in the post-batch
/// overlay. Labels are immutable per slot, so only liveness, injectivity
/// (unchanged) and edges need re-verification.
fn still_valid(q: &Graph, g: &DynamicGraph, e: &Embedding) -> bool {
    let map = e.as_slice();
    if map.iter().any(|&v| !g.is_live(v)) {
        return false;
    }
    for u in q.vertices() {
        for &w in q.neighbors(u) {
            if u < w && !g.has_edge(map[u.index()], map[w.index()]) {
                return false;
            }
        }
    }
    true
}

/// Repairs one standing query against the post-batch overlay.
fn repair_one(
    q: &Graph,
    stored: &[Embedding],
    g: &DynamicGraph,
    fx: &BatchEffects,
    deadline: Deadline,
) -> Result<RepairOutcome, Timeout> {
    // Invalidation: embeddings disjoint from the touched region are kept
    // untouched; intersecting ones are re-verified. A bitmap over vertex
    // slots keeps the membership test O(1) per mapped vertex — the kept
    // scan runs over every stored embedding, so it must stay cheap.
    let mut touched_bits = vec![false; g.vertex_slots()];
    for v in &fx.touched {
        touched_bits[v.index()] = true;
    }
    let touches = |e: &Embedding| e.as_slice().iter().any(|v| touched_bits[v.index()]);
    let mut kept: Vec<Embedding> = Vec::with_capacity(stored.len());
    let mut removed: Vec<Embedding> = Vec::new();
    for e in stored {
        deadline.check()?;
        if !touches(e) || still_valid(q, g, e) {
            kept.push(e.clone());
        } else {
            removed.push(e.clone());
        }
    }
    // Addition: seed from every label-compatible (query edge → added edge)
    // and (query vertex → added vertex) pin. Any embedding new after the
    // batch must use an added edge or vertex, so the union of seeded
    // enumerations covers all additions.
    let mut found: Vec<Embedding> = Vec::new();
    let mut seeder = SeededEnumerator::new(q, g);
    for &(a, b) in &fx.added_edges {
        if !g.has_edge(a, b) {
            continue; // re-removed within the same batch
        }
        let (la, lb) = (g.label(a), g.label(b));
        for u in q.vertices() {
            for &w in q.neighbors(u) {
                if q.label(u) == la && q.label(w) == lb {
                    seeder.enumerate(&[(u, a), (w, b)], deadline, &mut found)?;
                }
            }
        }
    }
    for &c in &fx.added_vertices {
        if !g.is_live(c) {
            continue; // removed within the same batch
        }
        let lc = g.label(c);
        for u in q.vertices() {
            if q.label(u) == lc {
                seeder.enumerate(&[(u, c)], deadline, &mut found)?;
            }
        }
    }
    sort_embeddings(&mut found);
    found.dedup();
    let added: Vec<Embedding> = found.into_iter().filter(|e| !contains_sorted(&kept, e)).collect();
    // Merge: kept is sorted (subsequence of the sorted store), added is
    // sorted and disjoint from it, so a linear merge keeps the set sorted
    // without re-sorting the whole store.
    let mut new_set = Vec::with_capacity(kept.len() + added.len());
    let mut ki = kept.into_iter().peekable();
    let mut ai = added.iter().peekable();
    loop {
        match (ki.peek(), ai.peek()) {
            (Some(k), Some(a)) => {
                if k.as_slice() < a.as_slice() {
                    new_set.extend(ki.next());
                } else {
                    new_set.extend(ai.next().cloned());
                }
            }
            (Some(_), None) => new_set.extend(ki.next()),
            (None, Some(_)) => new_set.extend(ai.next().cloned()),
            (None, None) => break,
        }
    }
    Ok(RepairOutcome { new_set, added, removed })
}

impl ContinuousMatcher {
    /// Wraps a base graph; standing queries are registered separately.
    pub fn new(base: Graph, policy: CompactionPolicy) -> Self {
        Self {
            graph: DynamicGraph::new(base),
            queries: Vec::new(),
            next_id: 0,
            policy,
            compactions: 0,
        }
    }

    /// The current overlay.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The compaction policy in force.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Registered standing queries with their maintained embedding sets.
    pub fn standing(&self) -> &[StandingQuery] {
        &self.queries
    }

    /// The maintained embedding set of a standing query.
    pub fn embeddings(&self, query_id: u64) -> Option<&[Embedding]> {
        self.queries.iter().find(|s| s.id == query_id).map(|s| s.embeddings.as_slice())
    }

    /// Registers a standing query: enumerates its current embeddings and
    /// maintains them under every subsequent batch. Returns the query id.
    pub fn register(&mut self, query: Graph, deadline: Deadline) -> Result<u64, Timeout> {
        let mut embeddings = enumerate_overlay(&query, &self.graph, deadline)?;
        sort_embeddings(&mut embeddings);
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push(StandingQuery { id, query, embeddings });
        Ok(id)
    }

    /// Deregisters a standing query; returns whether it existed.
    pub fn deregister(&mut self, query_id: u64) -> bool {
        let before = self.queries.len();
        self.queries.retain(|s| s.id != query_id);
        self.queries.len() != before
    }

    /// One-shot query against the current overlay state (sorted results).
    pub fn query(&self, q: &Graph, deadline: Deadline) -> Result<Vec<Embedding>, Timeout> {
        enumerate_overlay(q, &self.graph, deadline)
    }

    /// Atomically applies a batch, repairs every standing query (with up to
    /// `threads` workers; results are slot-indexed so output is identical at
    /// every thread count), and compacts if the policy's threshold is
    /// crossed — remapping the stored embeddings through the compaction's
    /// old→new id mapping.
    pub fn apply_batch(
        &mut self,
        updates: &[Update],
        threads: usize,
        deadline: Deadline,
    ) -> Result<BatchReport, BatchError> {
        let fx = self.graph.apply_batch(updates)?;
        let outcomes = repair_all(&self.graph, &self.queries, &fx, threads, deadline)?;
        let mut deltas = Vec::with_capacity(self.queries.len());
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            let sq = &mut self.queries[slot];
            sq.embeddings = outcome.new_set;
            deltas.push(RepairDelta {
                query_id: sq.id,
                added: outcome.added,
                removed: outcome.removed,
            });
        }
        let mut compacted = false;
        if let Some(report) = self.graph.maybe_compact(&self.policy) {
            compacted = true;
            self.compactions += 1;
            for sq in &mut self.queries {
                for e in &mut sq.embeddings {
                    let remapped: Vec<VertexId> = e
                        .as_slice()
                        .iter()
                        .map(|&v| report.mapping[v.index()].unwrap_or(v))
                        .collect();
                    *e = Embedding::new(remapped);
                }
                // Dense renumbering preserves relative id order, so the
                // lexicographic sort order of the set is preserved too.
            }
        }
        Ok(BatchReport { applied: fx.applied, touched: fx.touched.len(), deltas, compacted })
    }
}

/// Below this estimated repair work (stored embeddings to re-check plus
/// seed pins to enumerate, summed over standing queries), repair runs
/// sequentially even when workers are available: spawning a scoped thread
/// costs tens of microseconds, which dwarfs a small repair. Results are
/// slot-indexed either way, so the output is identical at every thread
/// count — this only picks the cheaper execution.
const PARALLEL_REPAIR_MIN_WORK: usize = 4096;

/// Repairs all standing queries, slot-indexed for thread-count determinism.
fn repair_all(
    graph: &DynamicGraph,
    queries: &[StandingQuery],
    fx: &BatchEffects,
    threads: usize,
    deadline: Deadline,
) -> Result<Vec<RepairOutcome>, Timeout> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let work: usize = queries.iter().map(|sq| sq.embeddings.len()).sum::<usize>()
        + (fx.added_edges.len() + fx.added_vertices.len() + fx.touched.len()) * queries.len();
    if threads <= 1 || queries.len() == 1 || work < PARALLEL_REPAIR_MIN_WORK {
        return queries
            .iter()
            .map(|sq| repair_one(&sq.query, &sq.embeddings, graph, fx, deadline))
            .collect();
    }
    let slots: Vec<Mutex<Option<Result<RepairOutcome, Timeout>>>> =
        queries.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(queries.len()) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let sq = &queries[i];
                let r = repair_one(&sq.query, &sq.embeddings, graph, fx, deadline);
                match slots[i].lock() {
                    Ok(mut slot) => *slot = Some(r),
                    Err(poisoned) => *poisoned.into_inner() = Some(r),
                }
            });
        }
    });
    let mut out = Vec::with_capacity(queries.len());
    for slot in slots {
        let inner = match slot.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        };
        match inner {
            Some(Ok(o)) => out.push(o),
            Some(Err(t)) => return Err(t),
            None => return Err(Timeout), // worker vanished; fail closed
        }
    }
    Ok(out)
}

/// Counter snapshot of a [`ContinuousService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContinuousStats {
    /// Updates applied to the overlay (duplicate no-ops excluded).
    pub updates_applied: u64,
    /// Update batches accepted.
    pub update_batches: u64,
    /// Batches rejected as malformed (overlay untouched).
    pub batches_rejected: u64,
    /// CSR compactions performed.
    pub compactions: u64,
    /// Standing-query repairs executed (one per query per batch).
    pub repairs: u64,
    /// Embeddings added across all repairs.
    pub embeddings_added: u64,
    /// Embeddings invalidated across all repairs.
    pub embeddings_removed: u64,
    /// Currently-registered standing queries.
    pub standing_queries: u64,
    /// One-shot queries served.
    pub queries_served: u64,
}

/// Thread-safe facade over a [`ContinuousMatcher`] for interleaved
/// update/query traffic.
///
/// Updates take the write lock; one-shot queries and embedding-set reads
/// take the read lock, so every read observes a batch boundary — a
/// **snapshot-consistent** state in which the overlay and all standing sets
/// agree — never a half-applied batch.
#[derive(Debug)]
pub struct ContinuousService {
    inner: RwLock<ContinuousMatcher>,
    updates_applied: AtomicU64,
    update_batches: AtomicU64,
    batches_rejected: AtomicU64,
    repairs: AtomicU64,
    embeddings_added: AtomicU64,
    embeddings_removed: AtomicU64,
    queries_served: AtomicU64,
}

impl ContinuousService {
    /// Wraps a base graph.
    pub fn new(base: Graph, policy: CompactionPolicy) -> Self {
        Self {
            inner: RwLock::new(ContinuousMatcher::new(base, policy)),
            updates_applied: AtomicU64::new(0),
            update_batches: AtomicU64::new(0),
            batches_rejected: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            embeddings_added: AtomicU64::new(0),
            embeddings_removed: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, ContinuousMatcher> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, ContinuousMatcher> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a standing query (write lock). Returns the query id.
    pub fn register(&self, query: Graph, deadline: Deadline) -> Result<u64, Timeout> {
        self.write().register(query, deadline)
    }

    /// Applies one batch under the write lock: no reader observes a
    /// half-applied batch. Counters are updated on the way out.
    pub fn apply_batch(
        &self,
        updates: &[Update],
        threads: usize,
        deadline: Deadline,
    ) -> Result<BatchReport, BatchError> {
        let result = self.write().apply_batch(updates, threads, deadline);
        match &result {
            Ok(report) => {
                self.updates_applied.fetch_add(report.applied as u64, Ordering::Relaxed);
                self.update_batches.fetch_add(1, Ordering::Relaxed);
                self.repairs.fetch_add(report.deltas.len() as u64, Ordering::Relaxed);
                self.embeddings_added.fetch_add(report.total_added() as u64, Ordering::Relaxed);
                self.embeddings_removed.fetch_add(report.total_removed() as u64, Ordering::Relaxed);
            }
            Err(BatchError::Graph(_)) => {
                self.batches_rejected.fetch_add(1, Ordering::Relaxed);
            }
            Err(BatchError::Timeout) => {}
        }
        result
    }

    /// One-shot query against a snapshot-consistent state (read lock).
    pub fn query(&self, q: &Graph, deadline: Deadline) -> Result<Vec<Embedding>, Timeout> {
        let r = self.read().query(q, deadline);
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Snapshot of a standing query's current embedding set (read lock).
    pub fn embeddings(&self, query_id: u64) -> Option<Vec<Embedding>> {
        self.read().embeddings(query_id).map(<[Embedding]>::to_vec)
    }

    /// Runs `f` against the matcher under the read lock (snapshot reads).
    pub fn with_snapshot<T>(&self, f: impl FnOnce(&ContinuousMatcher) -> T) -> T {
        f(&self.read())
    }

    /// Counter snapshot for metrics exposition.
    pub fn stats(&self) -> ContinuousStats {
        let inner = self.read();
        ContinuousStats {
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            update_batches: self.update_batches.load(Ordering::Relaxed),
            batches_rejected: self.batches_rejected.load(Ordering::Relaxed),
            compactions: inner.compactions(),
            repairs: self.repairs.load(Ordering::Relaxed),
            embeddings_added: self.embeddings_added.load(Ordering::Relaxed),
            embeddings_removed: self.embeddings_removed.load(Ordering::Relaxed),
            standing_queries: inner.standing().len() as u64,
            queries_served: self.queries_served.load(Ordering::Relaxed),
        }
    }
}

/// A graph database under updates, with an incrementally-maintained
/// fingerprint (IFV) index: only graphs dirtied since the last refresh get
/// their fingerprint recomputed.
#[derive(Debug)]
pub struct DynamicDb {
    graphs: Vec<DynamicGraph>,
    interner: LabelInterner,
    index: FingerprintIndex,
    dirty: Vec<bool>,
    refreshes: u64,
}

impl DynamicDb {
    /// Wraps every member graph in an overlay and builds the initial index.
    pub fn new(db: &GraphDb) -> Self {
        let graphs = db.graphs().iter().cloned().map(DynamicGraph::new).collect();
        let index = FingerprintIndex::build_default(db);
        Self {
            graphs,
            interner: db.interner().clone(),
            index,
            dirty: vec![false; db.len()],
            refreshes: 0,
        }
    }

    /// Number of member graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The overlay of one member graph.
    pub fn graph(&self, id: GraphId) -> &DynamicGraph {
        &self.graphs[id.index()]
    }

    /// Member graphs whose fingerprint is stale.
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// Fingerprint refreshes performed so far (per-graph recomputations).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Atomically applies a batch to one member graph and marks its
    /// fingerprint dirty.
    pub fn apply(&mut self, id: GraphId, updates: &[Update]) -> Result<BatchEffects, GraphError> {
        let fx = self.graphs[id.index()].apply_batch(updates)?;
        if fx.applied > 0 {
            self.dirty[id.index()] = true;
        }
        Ok(fx)
    }

    /// Recomputes fingerprints for dirty graphs only; returns how many were
    /// refreshed. After this, [`candidates`](Self::candidates) is exactly
    /// what a fresh full build over the materialized database would answer.
    pub fn refresh_index(&mut self, budget: &BuildBudget) -> Result<usize, BuildError> {
        let mut refreshed = 0;
        for (i, dirty) in self.dirty.iter_mut().enumerate() {
            if *dirty {
                let (g, _) = self.graphs[i].materialize();
                self.index.refresh_graph(GraphId(i as u32), &g, budget)?;
                *dirty = false;
                refreshed += 1;
                self.refreshes += 1;
            }
        }
        Ok(refreshed)
    }

    /// Candidate graphs for `q` per the maintained index. Callers must
    /// [`refresh_index`](Self::refresh_index) after updates; a stale index
    /// would readmit false negatives, so this asserts cleanliness in debug
    /// builds.
    pub fn candidates(&self, q: &Graph) -> CandidateGraphs {
        debug_assert_eq!(self.dirty_count(), 0, "candidates() on a dirty DynamicDb");
        self.index.candidates(q)
    }

    /// The maintained index.
    pub fn index(&self) -> &FingerprintIndex {
        &self.index
    }

    /// Materializes every overlay into a fresh immutable database (dense
    /// renumbering per graph; the shared interner is preserved).
    pub fn materialize(&self) -> GraphDb {
        let graphs = self.graphs.iter().map(|g| g.materialize().0).collect();
        GraphDb::with_interner(graphs, self.interner.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    /// Path with labels 0-1-0-2 plus a chord, same as the graph crate's
    /// sample.
    fn base() -> Graph {
        labeled(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn repair_matches_requery_on_simple_stream() {
        let mut m = ContinuousMatcher::new(base(), CompactionPolicy::never());
        let q = labeled(&[0, 1], &[(0, 1)]);
        let id = m.register(q.clone(), Deadline::none()).unwrap();
        assert_eq!(m.embeddings(id).unwrap().len(), 2);
        // Add a vertex and wire it so a new embedding appears, remove an
        // edge so an old one dies.
        let batch = [
            Update::AddVertex { label: Label(1) },
            Update::AddEdge { u: VertexId(4), v: VertexId(0) },
            Update::RemoveEdge { u: VertexId(1), v: VertexId(2) },
        ];
        let report = m.apply_batch(&batch, 1, Deadline::none()).unwrap();
        assert_eq!(report.applied, 3);
        let delta = &report.deltas[0];
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.removed.len(), 1);
        let full = m.query(&q, Deadline::none()).unwrap();
        assert_eq!(m.embeddings(id).unwrap(), full.as_slice(), "I10: repaired != recomputed");
    }

    #[test]
    fn repair_identical_across_thread_counts() {
        let queries: Vec<Graph> = vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[1, 0, 2], &[(0, 1), (1, 2)]),
            labeled(&[2], &[]),
        ];
        let batch = [
            Update::AddVertex { label: Label(2) },
            Update::AddEdge { u: VertexId(4), v: VertexId(2) },
            Update::RemoveVertex { vertex: VertexId(3) },
        ];
        let mut reference: Option<Vec<Vec<Embedding>>> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut m = ContinuousMatcher::new(base(), CompactionPolicy::never());
            for q in &queries {
                m.register(q.clone(), Deadline::none()).unwrap();
            }
            m.apply_batch(&batch, threads, Deadline::none()).unwrap();
            let sets: Vec<Vec<Embedding>> =
                m.standing().iter().map(|s| s.embeddings().to_vec()).collect();
            match &reference {
                None => reference = Some(sets),
                Some(want) => assert_eq!(&sets, want, "thread count {threads} diverged"),
            }
        }
    }

    #[test]
    fn compaction_remaps_standing_sets() {
        let policy = CompactionPolicy { min_delta_ops: 1, delta_ratio: 0.0 };
        let mut m = ContinuousMatcher::new(base(), policy);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let id = m.register(q.clone(), Deadline::none()).unwrap();
        let report = m
            .apply_batch(&[Update::RemoveVertex { vertex: VertexId(0) }], 2, Deadline::none())
            .unwrap();
        assert!(report.compacted);
        // After compaction ids are dense again; the repaired set must equal
        // a fresh query against the compacted overlay.
        let full = m.query(&q, Deadline::none()).unwrap();
        assert_eq!(m.embeddings(id).unwrap(), full.as_slice());
        assert_eq!(m.compactions(), 1);
    }

    #[test]
    fn malformed_batch_rejected_atomically() {
        let mut m = ContinuousMatcher::new(base(), CompactionPolicy::never());
        let id = m.register(labeled(&[0, 1], &[(0, 1)]), Deadline::none()).unwrap();
        let before = m.embeddings(id).unwrap().to_vec();
        let bad = [
            Update::AddEdge { u: VertexId(0), v: VertexId(2) },
            Update::RemoveEdge { u: VertexId(0), v: VertexId(2) },
            Update::RemoveEdge { u: VertexId(0), v: VertexId(2) }, // double remove
        ];
        let err = m.apply_batch(&bad, 1, Deadline::none()).unwrap_err();
        assert!(matches!(err, BatchError::Graph(GraphError::MissingEdge { .. })));
        assert!(err.to_string().contains("does not exist"));
        assert_eq!(m.embeddings(id).unwrap(), before.as_slice());
        assert_eq!(m.graph().edge_count(), 4);
    }

    #[test]
    fn service_counts_and_snapshot_reads() {
        let svc = ContinuousService::new(base(), CompactionPolicy::never());
        let q = labeled(&[0, 1], &[(0, 1)]);
        let id = svc.register(q.clone(), Deadline::none()).unwrap();
        let batch = [
            Update::AddVertex { label: Label(1) },
            Update::AddEdge { u: VertexId(4), v: VertexId(2) },
        ];
        svc.apply_batch(&batch, 2, Deadline::none()).unwrap();
        assert!(svc
            .apply_batch(&[Update::RemoveVertex { vertex: VertexId(9) }], 2, Deadline::none())
            .is_err());
        let got = svc.query(&q, Deadline::none()).unwrap();
        assert_eq!(svc.embeddings(id).unwrap(), got);
        let stats = svc.stats();
        assert_eq!(stats.updates_applied, 2);
        assert_eq!(stats.update_batches, 1);
        assert_eq!(stats.batches_rejected, 1);
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.embeddings_added, 1);
        assert_eq!(stats.standing_queries, 1);
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn dynamic_db_incremental_index_equals_fresh_build() {
        let g0 = labeled(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let g1 = labeled(&[0, 1], &[(0, 1)]);
        let db = GraphDb::from_graphs(vec![g0, g1]);
        let mut ddb = DynamicDb::new(&db);
        let batch = [
            Update::AddVertex { label: Label(2) },
            Update::AddEdge { u: VertexId(2), v: VertexId(1) },
        ];
        ddb.apply(GraphId(1), &batch).unwrap();
        assert_eq!(ddb.dirty_count(), 1);
        let refreshed = ddb.refresh_index(&BuildBudget::unlimited()).unwrap();
        assert_eq!(refreshed, 1);
        let rebuilt = ddb.materialize();
        let fresh = FingerprintIndex::build_default(&rebuilt);
        for q in rebuilt.graphs() {
            assert_eq!(
                ddb.candidates(q).into_ids(rebuilt.len()),
                fresh.candidates(q).into_ids(rebuilt.len()),
                "incrementally-maintained IFV index diverges from fresh build"
            );
        }
    }
}
