//! Self-tuning adaptive engine routing from phase telemetry.
//!
//! No single engine dominates: the paper's own comparison has CFQL and the
//! index-based engines diverging by an order of magnitude depending on the
//! workload regime, and `BENCH_phases.json` shows distinct filter-dominated
//! vs verify-dominated regimes on our reproduction. This module closes the
//! loop that PR 5's observability layer opened: instead of a caller
//! hand-picking one of the 13 engines, [`AdaptiveEngine`] extracts a cheap
//! per-query feature vector ([`sqp_matching::features`]), predicts each
//! candidate engine's cost with a per-engine linear model over log-cost
//! space ([`CostModel`]), routes the query to the predicted-fastest engine,
//! and updates the model online from the outcome it actually observed.
//!
//! # Cost model
//!
//! One weight vector per candidate engine over the [`FEATURE_DIM`]-dim
//! feature vector; the prediction is `w · x` in **ln(nanoseconds)** — costs
//! span six orders of magnitude, so the model regresses log cost, and the
//! argmin over predictions picks the route (ties break to the lowest
//! candidate index, keeping routing deterministic).
//!
//! # Online updates and censoring
//!
//! Completed queries apply a clipped SGD step toward the observed log cost.
//! Timed-out and resource-exhausted routes are **censored**: the true cost
//! is only known to be *at least* the budget, so the update pushes the
//! prediction *up* toward `ln(budget)` when it was below the bound and is a
//! no-op when the model already predicted at or above it — a censored
//! observation can never make an engine look cheaper. Panicked/wedged
//! routes carry no usable cost at all and only count as mispredictions.
//!
//! # Determinism
//!
//! Cold-start weights are derived from the database fingerprint (pure
//! splitmix64), offline fitting is a closed-form ridge solve, and a
//! **frozen** model (loaded via `--model-in` or [`AdaptiveEngine::set_model`])
//! performs no updates at all — so routing decisions for a fixed model and
//! workload are byte-identical across runs and thread counts, which
//! `tests/oracle_equivalence.rs` asserts.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sqp_graph::{Graph, GraphDb};
use sqp_index::{BuildBudget, BuildError};
use sqp_matching::features::{extract, LabelHistogram, FEATURE_DIM};
use sqp_matching::{Matcher, MatcherConfig, ResourceLimits};

use crate::engine::{BuildReport, EngineCategory, QueryEngine, QueryOutcome, QueryStatus};
use crate::journal::db_fingerprint;
use crate::parallel::lock;

/// Default candidate engines: matcher-backed (vcFV) engines spanning the
/// filter-heavy / enumeration-heavy spectrum, so the same model file routes
/// both the sequential engine path and the pool/service matcher path.
pub const DEFAULT_CANDIDATES: [&str; 4] = ["CFQL", "GraphQL", "QuickSI", "Ullmann"];

/// SGD learning rate for online updates.
const LEARNING_RATE: f64 = 0.05;
/// Per-step clip on the prediction error (log-space), for stability.
const ERROR_CLIP: f64 = 4.0;
/// A completed route whose observed cost exceeds `MISPREDICT_FACTOR` × the
/// prediction counts as a misprediction (when above the noise floor).
const MISPREDICT_FACTOR: f64 = 4.0;
/// Observed costs below this (nanoseconds) never count as mispredictions —
/// sub-millisecond queries are routing-indifferent.
const MISPREDICT_FLOOR_NANOS: f64 = 1e6;
/// Ridge regularization for the offline fit.
const RIDGE_LAMBDA: f64 = 1e-3;

/// splitmix64: the deterministic cold-start weight source.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One observation for the offline fit: feature vector, observed cost in
/// ln(nanoseconds), and whether the observation is censored (the query hit
/// a budget, so the true cost is only bounded below by `ln_nanos`).
#[derive(Clone, Copy, Debug)]
pub struct FitSample {
    /// Feature vector ([`sqp_matching::QueryFeatures::to_vector`]).
    pub x: [f64; FEATURE_DIM],
    /// Observed (or censoring-bound) cost, ln(nanoseconds).
    pub ln_nanos: f64,
    /// Whether `ln_nanos` is a lower bound rather than an observation.
    pub censored: bool,
}

/// Per-engine linear cost models over the query feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    seed: u64,
    names: Vec<String>,
    weights: Vec<[f64; FEATURE_DIM]>,
}

impl CostModel {
    /// A deterministic cold-start model: near-zero weights derived from
    /// `seed` (typically the database fingerprint), so untrained candidates
    /// tie-break reproducibly instead of by declaration order alone.
    pub fn cold_start(names: &[&str], seed: u64) -> Self {
        let mut weights = Vec::with_capacity(names.len());
        for (i, _) in names.iter().enumerate() {
            let mut w = [0.0; FEATURE_DIM];
            for (j, wj) in w.iter_mut().enumerate() {
                let r = splitmix64(seed ^ ((i * FEATURE_DIM + j) as u64).wrapping_mul(0x9e3b));
                // Uniform in [0, 1e-3): big enough to order ties, far too
                // small to survive a single real observation.
                *wj = (r >> 11) as f64 / (1u64 << 53) as f64 * 1e-3;
            }
            weights.push(w);
        }
        Self { seed, names: names.iter().map(|s| s.to_string()).collect(), weights }
    }

    /// Candidate engine names, in routing order.
    pub fn engine_names(&self) -> &[String] {
        &self.names
    }

    /// Number of candidate engines.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the model has no candidates.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The seed the model was cold-started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Predicted cost of candidate `idx` on features `x`, ln(nanoseconds).
    pub fn predict(&self, idx: usize, x: &[f64; FEATURE_DIM]) -> f64 {
        self.weights[idx].iter().zip(x.iter()).map(|(w, v)| w * v).sum()
    }

    /// The candidate with the lowest predicted cost (ties and non-finite
    /// predictions resolve to the lowest index — deterministic).
    pub fn route(&self, x: &[f64; FEATURE_DIM]) -> usize {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for idx in 0..self.weights.len() {
            let c = self.predict(idx, x);
            if c.is_finite() && c < best_cost {
                best_cost = c;
                best = idx;
            }
        }
        best
    }

    /// One censored-aware SGD step on candidate `idx`: moves the prediction
    /// toward `observed_ln_nanos`. For a censored observation (timeout —
    /// the true cost is only known to be ≥ the bound) the step only ever
    /// *raises* the prediction: if the model already predicts at or above
    /// the bound, nothing is learned and nothing changes.
    pub fn update(
        &mut self,
        idx: usize,
        x: &[f64; FEATURE_DIM],
        observed_ln_nanos: f64,
        censored: bool,
    ) {
        if !observed_ln_nanos.is_finite() {
            return;
        }
        let err = self.predict(idx, x) - observed_ln_nanos;
        if censored && err >= 0.0 {
            return; // prediction already at/above the censoring bound
        }
        let step = LEARNING_RATE * err.clamp(-ERROR_CLIP, ERROR_CLIP);
        let w = &mut self.weights[idx];
        for (wj, xj) in w.iter_mut().zip(x.iter()) {
            *wj -= step * xj;
            if !wj.is_finite() {
                *wj = 0.0;
            }
        }
    }

    /// Offline fit of candidate `idx` from recorded phase-stat samples: a
    /// closed-form ridge least-squares solve (deterministic — no iteration
    /// order or randomness). Censored samples participate at their bound,
    /// which keeps budget-hitting engines expensive in the model; the
    /// online [`update`](CostModel::update) rule handles censoring exactly.
    pub fn fit(&mut self, idx: usize, samples: &[FitSample]) {
        if samples.is_empty() {
            return;
        }
        // Normal equations: (XᵀX + λI) w = Xᵀy.
        let mut a = [[0.0f64; FEATURE_DIM]; FEATURE_DIM];
        let mut b = [0.0f64; FEATURE_DIM];
        for s in samples {
            if !s.ln_nanos.is_finite() {
                continue;
            }
            for ((&xi, bi), row) in s.x.iter().zip(b.iter_mut()).zip(a.iter_mut()) {
                *bi += xi * s.ln_nanos;
                for (aij, &xj) in row.iter_mut().zip(&s.x) {
                    *aij += xi * xj;
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += RIDGE_LAMBDA;
        }
        if let Some(w) = solve(a, b) {
            self.weights[idx] = w;
        }
    }

    /// Serializes the model as JSON (hand-rolled; Rust's shortest
    /// round-trip float formatting makes [`from_json`](CostModel::from_json)
    /// reproduce the weights bit-exactly).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"seed\": \"{:016x}\",\n", self.seed));
        out.push_str(&format!("  \"dim\": {FEATURE_DIM},\n"));
        out.push_str("  \"engines\": [\n");
        for (i, (name, w)) in self.names.iter().zip(self.weights.iter()).enumerate() {
            let ws: Vec<String> =
                w.iter().map(|v| if v.is_finite() { format!("{v}") } else { "0".into() }).collect();
            out.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"weights\": [{}] }}{}\n",
                ws.join(", "),
                if i + 1 < self.names.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a model file written by [`to_json`](CostModel::to_json). This
    /// is a strict reader of the model file format, not a general JSON
    /// parser (the same stance the run journal takes on its line format).
    pub fn from_json(text: &str) -> Result<Self, String> {
        // Engine names never contain whitespace, so the file can be
        // canonicalized by dropping all of it.
        let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        let s = compact.as_str();
        let version = field(s, "\"version\":")?;
        if !version.starts_with("1,") && !version.starts_with("1}") {
            return Err("unsupported adaptive model version (want 1)".into());
        }
        let seed_hex = field(s, "\"seed\":\"")?;
        let seed_hex = seed_hex.split('"').next().unwrap_or("");
        let seed = u64::from_str_radix(seed_hex, 16)
            .map_err(|_| format!("bad model seed {seed_hex:?}"))?;
        let dim = field(s, "\"dim\":")?;
        let dim: usize = dim
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .map_err(|_| "bad model dim".to_string())?;
        if dim != FEATURE_DIM {
            return Err(format!("model dim {dim} != feature dim {FEATURE_DIM}"));
        }
        let mut names = Vec::new();
        let mut weights = Vec::new();
        for chunk in s.split("\"name\":\"").skip(1) {
            let name = chunk.split('"').next().unwrap_or("");
            if name.is_empty() {
                return Err("empty engine name in model".into());
            }
            let wtext = field(chunk, "\"weights\":[")?;
            let wtext = wtext.split(']').next().ok_or("unterminated weights array")?;
            let mut w = [0.0f64; FEATURE_DIM];
            let parsed: Vec<f64> = wtext
                .split(',')
                .map(|t| t.parse::<f64>().map_err(|_| format!("bad weight {t:?} for {name}")))
                .collect::<Result<_, _>>()?;
            if parsed.len() != FEATURE_DIM {
                return Err(format!(
                    "engine {name} has {} weights, want {FEATURE_DIM}",
                    parsed.len()
                ));
            }
            w.copy_from_slice(&parsed);
            names.push(name.to_string());
            weights.push(w);
        }
        if names.is_empty() {
            return Err("model has no engines".into());
        }
        Ok(Self { seed, names, weights })
    }
}

/// The text after the first occurrence of `key`.
fn field<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
    s.find(key).map(|i| &s[i + key.len()..]).ok_or_else(|| format!("model JSON missing {key}"))
}

/// Solves `A w = b` by Gaussian elimination with partial pivoting.
fn solve(
    mut a: [[f64; FEATURE_DIM]; FEATURE_DIM],
    mut b: [f64; FEATURE_DIM],
) -> Option<[f64; FEATURE_DIM]> {
    let n = FEATURE_DIM;
    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let (pivot_rows, rows) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        let (b_pivot, b_rows) = b.split_at_mut(col + 1);
        for (row, b_row) in rows.iter_mut().zip(b_rows.iter_mut()) {
            let f = row[col] / pivot_row[col];
            for (rk, &pk) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *rk -= f * pk;
            }
            *b_row -= f * b_pivot[col];
        }
    }
    let mut w = [0.0f64; FEATURE_DIM];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
        if !w[col].is_finite() {
            return None;
        }
    }
    Some(w)
}

/// Routing telemetry, surfaced as the `sqp_adaptive_*` exposition families.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoutingStats {
    /// Queries routed to each candidate engine, in model order.
    pub routed: Vec<(String, u64)>,
    /// Routes that went wrong: censored/failed outcomes, plus completed
    /// routes whose observed cost exceeded the prediction by more than
    /// 4× (above a 1 ms noise floor).
    pub mispredicts: u64,
    /// Sum of predicted costs of the routed engines, nanoseconds.
    pub predicted_nanos: f64,
    /// Sum of observed costs of the routed engines, nanoseconds (censored
    /// routes contribute their budget — the known lower bound).
    pub actual_nanos: f64,
}

impl RoutingStats {
    fn for_names(names: &[String]) -> Self {
        Self { routed: names.iter().map(|n| (n.clone(), 0)).collect(), ..Default::default() }
    }

    /// Total routed queries.
    pub fn total_routed(&self) -> u64 {
        self.routed.iter().map(|(_, n)| n).sum()
    }

    /// Observed regret proxy: measured ÷ predicted wall time of the routed
    /// engines. 1.0 = perfectly calibrated, > 1 = the router is optimistic.
    /// 0.0 when nothing has been routed yet.
    pub fn observed_regret(&self) -> f64 {
        if self.predicted_nanos <= 0.0 || self.actual_nanos <= 0.0 {
            return 0.0;
        }
        self.actual_nanos / self.predicted_nanos
    }
}

/// Classifies an outcome for the model update.
enum Observation {
    /// Completed: a real cost observation.
    Exact(f64),
    /// Budget-censored (timeout / resource exhaustion): cost ≥ bound.
    Censored(f64),
    /// No usable cost signal (panic, wedge, shed, ...).
    None,
}

fn observe(outcome: &QueryOutcome, budget: Option<Duration>) -> Observation {
    let measured = outcome.query_time().as_nanos().max(1) as f64;
    match outcome.status {
        QueryStatus::Completed | QueryStatus::Quarantined => Observation::Exact(measured),
        QueryStatus::TimedOut | QueryStatus::ResourceExhausted { .. } => {
            let bound = budget.map_or(measured, |b| b.as_nanos().max(1) as f64);
            Observation::Censored(bound.max(measured.min(bound)))
        }
        _ => Observation::None,
    }
}

/// Checks a candidate list: non-empty, no self-reference, and every name a
/// matcher-backed (vcFV) engine — the only candidates that can serve both
/// the sequential engine path and the pool/service matcher path, keeping
/// model files portable between `sqp query` and `sqp serve`.
fn validate_candidates<S: AsRef<str>>(names: &[S]) -> Result<(), String> {
    if names.is_empty() {
        return Err("adaptive routing needs at least one candidate engine".into());
    }
    for n in names {
        let n = n.as_ref();
        if n.eq_ignore_ascii_case("adaptive") {
            return Err("adaptive cannot route to itself".into());
        }
        if crate::engines::matcher_by_name(n).is_none() {
            return Err(format!(
                "adaptive candidate {n:?} is not a matcher-backed engine \
                 (choose from: CFQL, CFL, GraphQL, Ullmann, QuickSI, TurboIso, SPath)"
            ));
        }
    }
    Ok(())
}

struct AdaptiveState {
    model: CostModel,
    stats: RoutingStats,
    /// Queries served so far (drives the learning-mode warmup rotation).
    served: u64,
    /// Fingerprint-seeded rotation offset for the warmup round.
    warmup_offset: u64,
}

/// A meta-engine that routes each query to the candidate engine its cost
/// model predicts fastest. See the module docs for the model, the online
/// update rule, and the determinism contract.
///
/// Two modes:
/// * **learning** (cold start, the default): the first round of queries is
///   routed round-robin (each candidate observed once, rotation seeded by
///   the database fingerprint), then argmin-routing with online updates;
/// * **frozen** (after [`load_model`](AdaptiveEngine::load_model) /
///   [`set_model`](AdaptiveEngine::set_model)): pure argmin-routing, no
///   warmup, no updates — deterministic for a fixed model and workload.
pub struct AdaptiveEngine {
    config: MatcherConfig,
    names: Vec<String>,
    engines: Vec<Box<dyn QueryEngine>>,
    hist: Option<LabelHistogram>,
    budget: Option<Duration>,
    frozen: bool,
    preset: Option<CostModel>,
    state: Mutex<AdaptiveState>,
}

impl Default for AdaptiveEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveEngine {
    /// An adaptive engine over [`DEFAULT_CANDIDATES`] in learning mode.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// [`new`](AdaptiveEngine::new) with a shared matcher configuration
    /// applied to every candidate.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        match Self::with_candidates(config, &DEFAULT_CANDIDATES) {
            Ok(e) => e,
            // DEFAULT_CANDIDATES are registry names; this cannot fail.
            Err(e) => panic!("default adaptive candidates invalid: {e}"),
        }
    }

    /// An adaptive engine over an explicit candidate list (validated: every
    /// name must be a matcher-backed engine).
    pub fn with_candidates<S: AsRef<str>>(
        config: MatcherConfig,
        candidates: &[S],
    ) -> Result<Self, String> {
        validate_candidates(candidates)?;
        let names: Vec<String> = candidates.iter().map(|s| s.as_ref().to_string()).collect();
        let placeholder =
            CostModel::cold_start(&names.iter().map(String::as_str).collect::<Vec<_>>(), 0);
        let stats = RoutingStats::for_names(&names);
        Ok(Self {
            config,
            names,
            engines: Vec::new(),
            hist: None,
            budget: None,
            frozen: false,
            preset: None,
            state: Mutex::new(AdaptiveState {
                model: placeholder,
                stats,
                served: 0,
                warmup_offset: 0,
            }),
        })
    }

    /// Installs a trained model and freezes routing: the candidate set
    /// becomes the model's engine list, no warmup runs, and no online
    /// updates are applied — routing is a pure function of (model, query).
    pub fn set_model(&mut self, model: CostModel) -> Result<(), String> {
        validate_candidates(model.engine_names())?;
        self.names = model.engine_names().to_vec();
        self.engines.clear(); // rebuilt against the new candidate set
        self.frozen = true;
        let stats = RoutingStats::for_names(&self.names);
        let mut st = lock(&self.state);
        st.stats = stats;
        st.served = 0;
        st.model = model.clone();
        drop(st);
        self.preset = Some(model);
        Ok(())
    }

    /// [`set_model`](AdaptiveEngine::set_model) from a `--model-in` JSON
    /// file written by [`model_json`](AdaptiveEngine::model_json).
    pub fn load_model(&mut self, json: &str) -> Result<(), String> {
        self.set_model(CostModel::from_json(json)?)
    }

    /// The current model (a snapshot — online updates do not track it).
    pub fn model(&self) -> CostModel {
        lock(&self.state).model.clone()
    }

    /// The current model serialized for `--model-out`.
    pub fn model_json(&self) -> String {
        lock(&self.state).model.to_json()
    }

    /// Whether the engine is in frozen (pure-routing) mode.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Candidate engine names, in routing order.
    pub fn candidate_names(&self) -> &[String] {
        &self.names
    }

    /// Routing telemetry since construction (or the last model install).
    pub fn routing_stats(&self) -> RoutingStats {
        lock(&self.state).stats.clone()
    }

    /// The pure routing decision for `q` under the current model — no
    /// warmup, no stats, no updates. This is what a frozen engine executes;
    /// tests and the overhead bench call it directly.
    ///
    /// # Panics
    /// Panics if called before a successful [`build`](QueryEngine::build).
    pub fn route_index(&self, q: &Graph) -> usize {
        let hist = match &self.hist {
            Some(h) => h,
            None => panic!("route before build"),
        };
        let x = extract(q, hist).to_vector();
        lock(&self.state).model.route(&x)
    }
}

impl QueryEngine for AdaptiveEngine {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn category(&self) -> EngineCategory {
        // Candidates are all matcher-backed vcFV engines.
        EngineCategory::VcFv
    }

    fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
        let mut report = BuildReport::default();
        self.engines.clear();
        for name in &self.names {
            let mut engine = match crate::engines::engine_by_name_with(name, self.config) {
                Some(e) => e,
                // Candidate lists are validated at construction.
                None => panic!("validated candidate {name} missing from registry"),
            };
            let r = engine.build(db)?;
            report.build_time += r.build_time;
            report.index_bytes += r.index_bytes;
            if let Some(b) = self.budget {
                engine.set_query_budget(Some(b));
            }
            self.engines.push(engine);
        }
        self.hist = Some(LabelHistogram::from_db(db));
        let fp = db_fingerprint(db);
        let mut st = lock(&self.state);
        st.warmup_offset = fp % self.names.len().max(1) as u64;
        if let Some(preset) = &self.preset {
            st.model = preset.clone();
        } else {
            let names: Vec<&str> = self.names.iter().map(String::as_str).collect();
            st.model = CostModel::cold_start(&names, fp);
        }
        Ok(report)
    }

    fn query(&self, q: &Graph) -> QueryOutcome {
        let hist = match &self.hist {
            Some(h) => h,
            // Documented precondition (QueryEngine::query): build first.
            None => panic!("query before build"),
        };
        let x = extract(q, hist).to_vector();
        let (idx, predicted_ln) = {
            let mut st = lock(&self.state);
            let n = st.model.len() as u64;
            let idx = if !self.frozen && st.served < n {
                // Learning-mode warmup: observe each candidate once, in a
                // fingerprint-seeded rotation.
                ((st.served + st.warmup_offset) % n) as usize
            } else {
                st.model.route(&x)
            };
            st.served += 1;
            (idx, st.model.predict(idx, &x))
        };
        let mut outcome = self.engines[idx].query(q);
        {
            let mut st = lock(&self.state);
            st.stats.routed[idx].1 += 1;
            let predicted_nanos = predicted_ln.clamp(0.0, 50.0).exp();
            match observe(&outcome, self.budget) {
                Observation::Exact(nanos) => {
                    st.stats.predicted_nanos += predicted_nanos;
                    st.stats.actual_nanos += nanos;
                    if nanos > MISPREDICT_FLOOR_NANOS && nanos > MISPREDICT_FACTOR * predicted_nanos
                    {
                        st.stats.mispredicts += 1;
                    }
                    if !self.frozen {
                        st.model.update(idx, &x, nanos.ln(), false);
                    }
                }
                Observation::Censored(bound) => {
                    st.stats.predicted_nanos += predicted_nanos;
                    st.stats.actual_nanos += bound;
                    st.stats.mispredicts += 1;
                    if !self.frozen {
                        st.model.update(idx, &x, bound.ln(), true);
                    }
                }
                Observation::None => {
                    st.stats.mispredicts += 1;
                }
            }
        }
        if outcome.engine.is_empty() {
            outcome.engine = self.names[idx].clone();
        }
        outcome
    }

    fn set_query_budget(&mut self, budget: Option<Duration>) {
        self.budget = budget;
        for e in &mut self.engines {
            e.set_query_budget(budget);
        }
    }

    fn set_resource_limits(&mut self, limits: ResourceLimits) {
        for e in &mut self.engines {
            e.set_resource_limits(limits);
        }
    }

    fn set_build_budget(&mut self, budget: BuildBudget) {
        for e in &mut self.engines {
            e.set_build_budget(budget);
        }
    }

    fn index_bytes(&self) -> usize {
        self.engines.iter().map(|e| e.index_bytes()).sum()
    }
}

/// The service-side face of adaptive routing: a frozen model plus the
/// candidate *matchers*, so `LocalExecutor` can pick a matcher per query
/// for the pool without touching engine objects. Always frozen — serving
/// determinism across thread counts requires routing to be a pure function
/// of (model, query).
pub struct MatcherRouter {
    names: Vec<String>,
    matchers: Vec<Arc<dyn Matcher>>,
    model: CostModel,
    hist: LabelHistogram,
    stats: Mutex<RoutingStats>,
}

impl fmt::Debug for MatcherRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatcherRouter").field("candidates", &self.names).finish()
    }
}

impl MatcherRouter {
    /// A router over a trained (frozen) model for `db`. Every engine named
    /// by the model must resolve to a matcher.
    pub fn new(model: CostModel, db: &GraphDb, config: MatcherConfig) -> Result<Self, String> {
        validate_candidates(model.engine_names())?;
        let names = model.engine_names().to_vec();
        let matchers: Vec<Arc<dyn Matcher>> = names
            .iter()
            .map(|n| {
                crate::engines::matcher_by_name_with(n, config)
                    .ok_or_else(|| format!("no matcher named {n:?}"))
            })
            .collect::<Result<_, _>>()?;
        let stats = RoutingStats::for_names(&names);
        Ok(Self {
            names,
            matchers,
            model,
            hist: LabelHistogram::from_db(db),
            stats: Mutex::new(stats),
        })
    }

    /// A router with a fingerprint-seeded cold-start model (for `sqp serve`
    /// without `--model-in`).
    pub fn cold_start<S: AsRef<str>>(
        db: &GraphDb,
        config: MatcherConfig,
        candidates: &[S],
    ) -> Result<Self, String> {
        validate_candidates(candidates)?;
        let names: Vec<&str> = candidates.iter().map(AsRef::as_ref).collect();
        let model = CostModel::cold_start(&names, db_fingerprint(db));
        Self::new(model, db, config)
    }

    /// Routes `q`: returns the candidate index and the predicted cost in
    /// ln(nanoseconds). Pure — stats are only touched by
    /// [`note`](MatcherRouter::note).
    pub fn route(&self, q: &Graph) -> (usize, f64) {
        let x = extract(q, &self.hist).to_vector();
        let idx = self.model.route(&x);
        (idx, self.model.predict(idx, &x))
    }

    /// The matcher for candidate `idx`.
    pub fn matcher(&self, idx: usize) -> Arc<dyn Matcher> {
        Arc::clone(&self.matchers[idx])
    }

    /// The engine name for candidate `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Records the observed outcome of a routed query into the stats (the
    /// model itself stays frozen).
    pub fn note(
        &self,
        idx: usize,
        predicted_ln: f64,
        outcome: &QueryOutcome,
        budget: Option<Duration>,
    ) {
        let mut stats = lock(&self.stats);
        stats.routed[idx].1 += 1;
        let predicted_nanos = predicted_ln.clamp(0.0, 50.0).exp();
        match observe(outcome, budget) {
            Observation::Exact(nanos) => {
                stats.predicted_nanos += predicted_nanos;
                stats.actual_nanos += nanos;
                if nanos > MISPREDICT_FLOOR_NANOS && nanos > MISPREDICT_FACTOR * predicted_nanos {
                    stats.mispredicts += 1;
                }
            }
            Observation::Censored(bound) => {
                stats.predicted_nanos += predicted_nanos;
                stats.actual_nanos += bound;
                stats.mispredicts += 1;
            }
            Observation::None => {
                stats.mispredicts += 1;
            }
        }
    }

    /// Routing telemetry snapshot.
    pub fn stats(&self) -> RoutingStats {
        lock(&self.stats).clone()
    }

    /// The frozen model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CfqlEngine;
    use sqp_graph::{GraphBuilder, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn small_db() -> Arc<GraphDb> {
        Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
            labeled(&[3, 3], &[(0, 1)]),
        ]))
    }

    fn x_of(v: f64) -> [f64; FEATURE_DIM] {
        let mut x = [0.0; FEATURE_DIM];
        x[0] = 1.0;
        x[1] = v;
        x
    }

    #[test]
    fn cold_start_is_deterministic_and_tiny() {
        let a = CostModel::cold_start(&["A", "B"], 42);
        let b = CostModel::cold_start(&["A", "B"], 42);
        let c = CostModel::cold_start(&["A", "B"], 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must give different tie-breaks");
        for idx in 0..2 {
            let p = a.predict(idx, &x_of(1.0));
            assert!(p.abs() < 0.1, "cold-start predictions must be near zero, got {p}");
        }
    }

    #[test]
    fn route_is_argmin_with_low_index_ties() {
        let mut m = CostModel::cold_start(&["A", "B", "C"], 0);
        m.weights[0] = [0.0; FEATURE_DIM];
        m.weights[1] = [0.0; FEATURE_DIM];
        m.weights[2] = [0.0; FEATURE_DIM];
        assert_eq!(m.route(&x_of(1.0)), 0, "exact ties resolve to the lowest index");
        m.weights[2][0] = -5.0;
        assert_eq!(m.route(&x_of(1.0)), 2);
    }

    #[test]
    fn update_moves_prediction_toward_observation() {
        let mut m = CostModel::cold_start(&["A"], 7);
        let x = x_of(2.0);
        let target = 14.0; // ln(~1.2ms)
        for _ in 0..500 {
            m.update(0, &x, target, false);
        }
        assert!((m.predict(0, &x) - target).abs() < 0.5);
    }

    #[test]
    fn censored_update_never_lowers_the_prediction() {
        let mut m = CostModel::cold_start(&["A"], 7);
        let x = x_of(1.0);
        // Drive the prediction well above the censoring bound...
        for _ in 0..500 {
            m.update(0, &x, 20.0, false);
        }
        let before = m.predict(0, &x);
        // ...then a censored observation at a lower bound must be a no-op.
        m.update(0, &x, 10.0, true);
        assert_eq!(m.predict(0, &x), before);
        // But a censored bound *above* the prediction pushes it up.
        m.update(0, &x, 30.0, true);
        assert!(m.predict(0, &x) > before);
    }

    #[test]
    fn fit_recovers_a_linear_cost_surface() {
        let mut m = CostModel::cold_start(&["A"], 1);
        // True model: cost = 3 + 2·x1.
        let samples: Vec<FitSample> = (0..20)
            .map(|i| {
                let v = i as f64 / 4.0;
                FitSample { x: x_of(v), ln_nanos: 3.0 + 2.0 * v, censored: false }
            })
            .collect();
        m.fit(0, &samples);
        for i in 0..6 {
            let v = i as f64 / 2.0;
            // Ridge shrinkage (λ = 1e-3) biases the exact solution slightly.
            assert!((m.predict(0, &x_of(v)) - (3.0 + 2.0 * v)).abs() < 1e-2);
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let mut m = CostModel::cold_start(&["CFQL", "GraphQL"], 0xdead_beef);
        m.update(0, &x_of(1.5), 13.7, false);
        m.update(1, &x_of(0.5), 9.1, true);
        let text = m.to_json();
        let back = CostModel::from_json(&text).unwrap();
        assert_eq!(m, back);
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(CostModel::from_json("").is_err());
        assert!(CostModel::from_json("{}").is_err());
        assert!(CostModel::from_json("{\"version\": 2}").is_err());
        let wrong_dim = "{\"version\": 1, \"seed\": \"0\", \"dim\": 3, \"engines\": []}";
        assert!(CostModel::from_json(wrong_dim).is_err());
        let no_engines =
            format!("{{\"version\": 1, \"seed\": \"0\", \"dim\": {FEATURE_DIM}, \"engines\": []}}");
        assert!(CostModel::from_json(&no_engines).is_err());
    }

    #[test]
    fn candidate_validation() {
        assert!(validate_candidates::<&str>(&[]).is_err());
        assert!(validate_candidates(&["adaptive"]).is_err());
        assert!(validate_candidates(&["Grapes"]).is_err(), "IFV engines are not routable");
        assert!(validate_candidates(&["no-such-engine"]).is_err());
        assert!(validate_candidates(&DEFAULT_CANDIDATES).is_ok());
    }

    #[test]
    fn adaptive_answers_match_a_fixed_engine() {
        let db = small_db();
        let queries = [labeled(&[0, 1], &[(0, 1)]), labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)])];
        let mut adaptive = AdaptiveEngine::new();
        adaptive.build(&db).unwrap();
        let mut cfql = CfqlEngine::new();
        cfql.build(&db).unwrap();
        for q in &queries {
            let a = adaptive.query(q);
            let c = cfql.query(q);
            assert_eq!(a.answers, c.answers);
            assert!(a.status.is_completed());
            assert!(
                DEFAULT_CANDIDATES.contains(&a.engine.as_str()),
                "outcome must name the routed engine, got {:?}",
                a.engine
            );
        }
        let stats = adaptive.routing_stats();
        assert_eq!(stats.total_routed(), 2);
    }

    #[test]
    fn learning_warmup_observes_each_candidate_once() {
        let db = small_db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let mut adaptive = AdaptiveEngine::new();
        adaptive.build(&db).unwrap();
        for _ in 0..DEFAULT_CANDIDATES.len() {
            adaptive.query(&q);
        }
        let stats = adaptive.routing_stats();
        for (name, n) in &stats.routed {
            assert_eq!(*n, 1, "warmup must route {name} exactly once: {stats:?}");
        }
    }

    #[test]
    fn frozen_engine_routes_purely_and_never_updates() {
        let db = small_db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let mut adaptive = AdaptiveEngine::new();
        let model = CostModel::cold_start(&["CFQL", "GraphQL"], 99);
        adaptive.set_model(model.clone()).unwrap();
        adaptive.build(&db).unwrap();
        assert!(adaptive.is_frozen());
        let expected = adaptive.route_index(&q);
        for _ in 0..5 {
            let out = adaptive.query(&q);
            assert_eq!(out.engine, adaptive.candidate_names()[expected]);
        }
        assert_eq!(adaptive.model(), model, "frozen mode must not update the model");
        assert_eq!(adaptive.routing_stats().routed[expected].1, 5);
    }

    #[test]
    fn model_persistence_reproduces_routing() {
        let db = small_db();
        let queries: Vec<Graph> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    labeled(&[0, 1], &[(0, 1)])
                } else {
                    labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
                }
            })
            .collect();
        // Learn on the workload, export, re-import: identical decisions.
        let mut learner = AdaptiveEngine::new();
        learner.build(&db).unwrap();
        for q in &queries {
            learner.query(q);
        }
        let json = learner.model_json();

        let mut a = AdaptiveEngine::new();
        a.load_model(&json).unwrap();
        a.build(&db).unwrap();
        let mut b = AdaptiveEngine::new();
        b.load_model(&json).unwrap();
        b.build(&db).unwrap();
        for q in &queries {
            assert_eq!(a.route_index(q), b.route_index(q));
        }
    }

    #[test]
    fn matcher_router_routes_and_notes() {
        let db = small_db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let router =
            MatcherRouter::cold_start(&db, MatcherConfig::default(), &DEFAULT_CANDIDATES).unwrap();
        let (idx, predicted) = router.route(&q);
        assert!(idx < DEFAULT_CANDIDATES.len());
        let (idx2, _) = router.route(&q);
        assert_eq!(idx, idx2, "frozen routing is deterministic");
        let outcome = QueryOutcome { filter_time: Duration::from_micros(10), ..Default::default() };
        router.note(idx, predicted, &outcome, None);
        let stats = router.stats();
        assert_eq!(stats.routed[idx].1, 1);
        assert_eq!(stats.total_routed(), 1);
    }

    #[test]
    fn router_requires_matcher_backed_candidates() {
        let db = small_db();
        assert!(MatcherRouter::cold_start(&db, MatcherConfig::default(), &["Grapes"]).is_err());
    }
}
