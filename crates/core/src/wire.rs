//! The length-prefixed, checksummed TCP wire protocol of the sharded
//! query service.
//!
//! One **frame** carries one [`Message`]:
//!
//! ```text
//! magic "SQPW" | kind u8 | len u32 le | payload (len bytes)
//! | fnv1a-64 checksum u64 over everything before it
//! ```
//!
//! The framing mirrors the binio v2 conventions (`sqp_graph::binio`):
//! little-endian length prefixes, a trailing FNV-1a checksum so truncated
//! or bit-flipped frames fail closed with a structured error instead of
//! decoding into garbage or panicking, byte-offset error context via
//! [`GraphError::Binary`], and every declared count validated against the
//! remaining input *before* any allocation. On top of that, the declared
//! payload length itself is capped ([`WireConfig::max_frame_len`]) and
//! rejected before the receive buffer is allocated, so a hostile or
//! corrupted header cannot trigger an out-of-memory abort.
//!
//! Responses are **streamed**: a shard answers a [`Message::Query`] with
//! zero or more [`Message::Answers`] chunks (bounded by
//! [`ANSWER_CHUNK`] ids each) followed by exactly one
//! [`Message::Outcome`], so a large answer set never has to fit in one
//! frame — or in one coordinator-side buffer.
//!
//! Deadline propagation is explicit: [`Message::Query`] carries the
//! *remaining* budget in milliseconds (`0` = unlimited), computed by the
//! coordinator at scatter time, so a shard never spends wall clock the
//! client has already lost.
//!
//! [`WireChaos`] is the transport-level sibling of
//! [`ChaosMatcher`](crate::chaos::ChaosMatcher): a deterministic fault
//! plan (drop / delay / truncate / corrupt-one-bit) keyed on a seed and
//! the outbound frame sequence number, used by the loopback chaos suite to
//! prove the coordinator degrades to partial results instead of failing or
//! panicking.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sqp_graph::database::GraphId;
use sqp_graph::error::GraphError;
use sqp_graph::{Graph, GraphBuilder, Label, VertexId};
use sqp_matching::{KernelStats, PhaseStats, ResourceKind, PHASE_COUNT};

use crate::engine::{GraphFailure, QueryOutcome, QueryStatus};

/// Frame magic: "SQPW" (subgraph query processing, wire).
pub const WIRE_MAGIC: &[u8; 4] = b"SQPW";
/// Protocol version, carried in [`Message::Hello`] / [`Message::HelloAck`].
pub const WIRE_VERSION: u32 = 1;
/// Maximum answer ids per [`Message::Answers`] chunk.
pub const ANSWER_CHUNK: usize = 4096;

/// Frame header bytes before the payload: magic + kind + length.
const HEADER_LEN: usize = 4 + 1 + 4;

/// 64-bit FNV-1a over `bytes` — same corruption check as binio v2 and the
/// run journal.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wire-layer limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireConfig {
    /// Hard cap on a frame's declared payload length. A header declaring
    /// more is rejected *before* the payload buffer is allocated.
    pub max_frame_len: u32,
}

impl Default for WireConfig {
    fn default() -> Self {
        // 64 MiB: far above any legitimate query/outcome frame (answers are
        // chunked), far below an allocation that could hurt the process.
        Self { max_frame_len: 64 << 20 }
    }
}

/// A wire-layer failure. Structural errors (bad magic, bad checksum,
/// truncation inside a frame, cap violations, malformed payloads) carry
/// byte-offset context through [`GraphError::Binary`]; transport errors
/// stay [`std::io::Error`].
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The byte stream is not a valid frame: bad magic, unknown kind,
    /// declared length over the cap, checksum mismatch, or a malformed
    /// payload. Always a [`GraphError::Binary`] with the offset (within
    /// the frame) where decoding failed.
    Frame(GraphError),
    /// The stream ended cleanly at a frame boundary (peer closed).
    Closed,
    /// The peer reported an error frame.
    Remote(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire transport error: {e}"),
            WireError::Frame(e) => write!(f, "wire frame error: {e}"),
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Remote(msg) => write!(f, "peer error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A structural frame error at byte `offset` within the frame.
fn frame_err(offset: usize, message: impl Into<String>) -> WireError {
    WireError::Frame(GraphError::Binary { offset, message: message.into() })
}

/// Who is greeting whom in a [`Message::Hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerRole {
    /// A coordinator connecting to a shard worker.
    Coordinator,
    /// An end client connecting to a coordinator.
    Client,
}

/// The serializable projection of a [`QueryOutcome`] minus its answer set
/// (answers travel separately in [`Message::Answers`] chunks). Graph ids in
/// `failures` are **global** database ids — shards translate before
/// replying, so the coordinator can merge without a reverse map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireOutcome {
    /// Terminal status of the (sub-)query.
    pub status: QueryStatus,
    /// `|C(q)|` on the responding side.
    pub candidates: u64,
    /// Filtering time in nanoseconds.
    pub filter_nanos: u64,
    /// Verification time in nanoseconds.
    pub verify_nanos: u64,
    /// Peak auxiliary bytes.
    pub aux_bytes: u64,
    /// Retries the responding side spent on the query.
    pub retries: u32,
    /// Per-graph failure attribution (global ids).
    pub failures: Vec<GraphFailure>,
    /// Enumeration-kernel counters.
    pub kernel: KernelStats,
    /// Per-phase span durations and item counts.
    pub phases: PhaseStats,
}

impl WireOutcome {
    /// Projects an executed outcome (answers stripped; ids must already be
    /// global).
    pub fn from_outcome(o: &QueryOutcome, retries: u32) -> Self {
        Self {
            status: o.status.clone(),
            candidates: o.candidates as u64,
            filter_nanos: duration_nanos(o.filter_time),
            verify_nanos: duration_nanos(o.verify_time),
            aux_bytes: o.aux_bytes as u64,
            retries,
            failures: o.failures.clone(),
            kernel: o.kernel,
            phases: o.phases,
        }
    }

    /// Reassembles a [`QueryOutcome`] around the streamed `answers`.
    pub fn into_outcome(self, answers: Vec<GraphId>) -> (QueryOutcome, u32) {
        let retries = self.retries;
        let outcome = QueryOutcome {
            answers,
            candidates: self.candidates as usize,
            filter_time: Duration::from_nanos(self.filter_nanos),
            verify_time: Duration::from_nanos(self.verify_nanos),
            status: self.status,
            failures: self.failures,
            aux_bytes: self.aux_bytes as usize,
            kernel: self.kernel,
            phases: self.phases,
            // The wire format does not carry the serving engine; receivers
            // stamp their own engine name (empty = caller's engine).
            engine: String::new(),
        };
        (outcome, retries)
    }
}

fn duration_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// One protocol message (= one frame).
#[derive(Clone, Debug)]
pub enum Message {
    /// Connection greeting. `db_fp` is the structural fingerprint of the
    /// *full* database; both sides must agree or the connection is refused
    /// (a shard serving a different database would silently return wrong
    /// answers).
    Hello {
        /// Protocol version of the sender.
        version: u32,
        /// What the connecting peer is.
        role: PeerRole,
        /// Structural fingerprint of the full (unsharded) database.
        db_fp: u64,
        /// Total shards the sender believes exist (0 from clients).
        shards: u32,
        /// Shard index the sender expects to reach (ignored from clients).
        shard_index: u32,
    },
    /// Greeting accepted.
    HelloAck {
        /// Protocol version of the responder.
        version: u32,
        /// Structural fingerprint of the responder's full database.
        db_fp: u64,
        /// Data graphs served behind this connection.
        graphs: u32,
    },
    /// One subgraph query. `budget_ms` is the *remaining* per-query budget
    /// at send time (0 = unlimited): the receiver must not spend more.
    Query {
        /// Caller-chosen id echoed in every response frame.
        id: u64,
        /// Remaining budget in milliseconds; 0 means unlimited.
        budget_ms: u64,
        /// The query graph.
        graph: Graph,
    },
    /// A chunk of answer ids (global database ids) for query `id`. Zero or
    /// more of these precede the [`Message::Outcome`].
    Answers {
        /// Id of the query these answers belong to.
        id: u64,
        /// Global graph ids, ascending within and across chunks.
        graphs: Vec<GraphId>,
    },
    /// Terminal response for query `id`.
    Outcome {
        /// Id of the finished query.
        id: u64,
        /// Everything but the answer set.
        outcome: WireOutcome,
    },
    /// The peer refused or failed a request.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Request the peer's Prometheus exposition.
    MetricsRequest,
    /// Prometheus exposition text.
    MetricsText {
        /// The rendered exposition.
        text: String,
    },
    /// Orderly goodbye; the receiver may close the connection.
    Bye,
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::HelloAck { .. } => 2,
            Message::Query { .. } => 3,
            Message::Answers { .. } => 4,
            Message::Outcome { .. } => 5,
            Message::Error { .. } => 6,
            Message::MetricsRequest => 7,
            Message::MetricsText { .. } => 8,
            Message::Bye => 9,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload encoding.

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_status(buf: &mut Vec<u8>, status: &QueryStatus) {
    match status {
        QueryStatus::Completed => buf.push(0),
        QueryStatus::TimedOut => buf.push(1),
        QueryStatus::ResourceExhausted { kind } => {
            buf.push(2);
            buf.push(match kind {
                ResourceKind::Steps => 0,
                ResourceKind::Memory => 1,
            });
        }
        QueryStatus::Quarantined => buf.push(3),
        QueryStatus::Panicked { message } => {
            buf.push(4);
            put_str(buf, message);
        }
        QueryStatus::Wedged => buf.push(5),
        QueryStatus::Unavailable => buf.push(6),
        QueryStatus::Shed => buf.push(7),
    }
}

fn put_graph(buf: &mut Vec<u8>, g: &Graph) {
    put_u32(buf, g.vertex_count() as u32);
    for v in 0..g.vertex_count() as u32 {
        put_u32(buf, g.label(VertexId(v)).0);
    }
    let mut edges = Vec::new();
    for u in 0..g.vertex_count() as u32 {
        for &w in g.neighbors(VertexId(u)) {
            if u < w.0 {
                edges.push((u, w.0));
            }
        }
    }
    put_u32(buf, edges.len() as u32);
    for (u, w) in edges {
        put_u32(buf, u);
        put_u32(buf, w);
    }
}

fn put_outcome(buf: &mut Vec<u8>, o: &WireOutcome) {
    put_status(buf, &o.status);
    put_u64(buf, o.candidates);
    put_u64(buf, o.filter_nanos);
    put_u64(buf, o.verify_nanos);
    put_u64(buf, o.aux_bytes);
    put_u32(buf, o.retries);
    put_u64(buf, o.kernel.intersections);
    put_u64(buf, o.kernel.gallop_hits);
    put_u64(buf, o.kernel.simd_hits);
    put_u64(buf, o.kernel.bitmap_probes);
    put_u32(buf, PHASE_COUNT as u32);
    for i in 0..PHASE_COUNT {
        put_u64(buf, o.phases.nanos[i]);
        put_u64(buf, o.phases.items[i]);
    }
    put_u32(buf, o.failures.len() as u32);
    for f in &o.failures {
        put_u32(buf, f.graph.0);
        put_status(buf, &f.status);
    }
}

fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::new();
    match msg {
        Message::Hello { version, role, db_fp, shards, shard_index } => {
            put_u32(&mut buf, *version);
            buf.push(match role {
                PeerRole::Coordinator => 0,
                PeerRole::Client => 1,
            });
            put_u64(&mut buf, *db_fp);
            put_u32(&mut buf, *shards);
            put_u32(&mut buf, *shard_index);
        }
        Message::HelloAck { version, db_fp, graphs } => {
            put_u32(&mut buf, *version);
            put_u64(&mut buf, *db_fp);
            put_u32(&mut buf, *graphs);
        }
        Message::Query { id, budget_ms, graph } => {
            put_u64(&mut buf, *id);
            put_u64(&mut buf, *budget_ms);
            put_graph(&mut buf, graph);
        }
        Message::Answers { id, graphs } => {
            put_u64(&mut buf, *id);
            put_u32(&mut buf, graphs.len() as u32);
            for g in graphs {
                put_u32(&mut buf, g.0);
            }
        }
        Message::Outcome { id, outcome } => {
            put_u64(&mut buf, *id);
            put_outcome(&mut buf, outcome);
        }
        Message::Error { message } => put_str(&mut buf, message),
        Message::MetricsRequest | Message::Bye => {}
        Message::MetricsText { text } => put_str(&mut buf, text),
    }
    buf
}

/// Encodes one message into a complete checksummed frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = encode_payload(msg);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    frame.extend_from_slice(WIRE_MAGIC);
    frame.push(msg.kind());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let sum = fnv1a64(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

// ---------------------------------------------------------------------------
// Payload decoding: a bounds-checked cursor in the binio `Reader` idiom.
// Every declared count is validated against the remaining bytes before any
// allocation, and every error carries the in-frame byte offset.

struct Cursor<'a> {
    data: &'a [u8],
    /// Offset of `data[0]` within the whole frame (payload starts after the
    /// header), so error offsets point into the frame, not the payload.
    base: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(payload: &'a [u8]) -> Self {
        Self { data: payload, base: HEADER_LEN, pos: 0 }
    }

    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(frame_err(
                self.offset(),
                format!("truncated frame: {what} needs {n} bytes, {} left", self.remaining()),
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Validates that `count` items of `item_bytes` each fit in the
    /// remaining payload — before the caller allocates for them.
    fn check_count(&self, count: usize, item_bytes: usize, what: &str) -> Result<(), WireError> {
        if count.saturating_mul(item_bytes) > self.remaining() {
            return Err(frame_err(
                self.offset(),
                format!(
                    "absurd count: {count} {what} ({item_bytes} bytes each) exceed the \
                     {} remaining payload bytes",
                    self.remaining()
                ),
            ));
        }
        Ok(())
    }

    fn get_str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.get_u32(what)? as usize;
        self.check_count(len, 1, "string bytes")?;
        let at = self.offset();
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| frame_err(at, format!("{what} is not valid UTF-8")))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(frame_err(
                self.offset(),
                format!("{} trailing payload bytes after message", self.remaining()),
            ));
        }
        Ok(())
    }
}

fn get_status(c: &mut Cursor<'_>) -> Result<QueryStatus, WireError> {
    let at = c.offset();
    Ok(match c.get_u8("status code")? {
        0 => QueryStatus::Completed,
        1 => QueryStatus::TimedOut,
        2 => match c.get_u8("resource kind")? {
            0 => QueryStatus::ResourceExhausted { kind: ResourceKind::Steps },
            1 => QueryStatus::ResourceExhausted { kind: ResourceKind::Memory },
            k => return Err(frame_err(at + 1, format!("unknown resource kind {k}"))),
        },
        3 => QueryStatus::Quarantined,
        4 => QueryStatus::Panicked { message: c.get_str("panic message")? },
        5 => QueryStatus::Wedged,
        6 => QueryStatus::Unavailable,
        7 => QueryStatus::Shed,
        k => return Err(frame_err(at, format!("unknown status code {k}"))),
    })
}

fn get_graph(c: &mut Cursor<'_>) -> Result<Graph, WireError> {
    let vcount = c.get_u32("vertex count")? as usize;
    c.check_count(vcount, 4, "vertex labels")?;
    let mut b = GraphBuilder::with_capacity(vcount);
    for _ in 0..vcount {
        b.add_vertex(Label(c.get_u32("vertex label")?));
    }
    let ecount = c.get_u32("edge count")? as usize;
    c.check_count(ecount, 8, "edges")?;
    for _ in 0..ecount {
        let at = c.offset();
        let u = c.get_u32("edge endpoint")?;
        let w = c.get_u32("edge endpoint")?;
        if u as usize >= vcount || w as usize >= vcount {
            return Err(frame_err(at, format!("edge ({u},{w}) references missing vertex")));
        }
        b.add_edge(VertexId(u), VertexId(w))
            .map_err(|e| frame_err(at, format!("invalid edge ({u},{w}): {e}")))?;
    }
    Ok(b.build())
}

fn get_outcome(c: &mut Cursor<'_>) -> Result<WireOutcome, WireError> {
    let status = get_status(c)?;
    let candidates = c.get_u64("candidates")?;
    let filter_nanos = c.get_u64("filter nanos")?;
    let verify_nanos = c.get_u64("verify nanos")?;
    let aux_bytes = c.get_u64("aux bytes")?;
    let retries = c.get_u32("retries")?;
    let kernel = KernelStats {
        intersections: c.get_u64("kernel intersections")?,
        gallop_hits: c.get_u64("kernel gallop hits")?,
        simd_hits: c.get_u64("kernel simd hits")?,
        bitmap_probes: c.get_u64("kernel bitmap probes")?,
    };
    let at = c.offset();
    let phase_count = c.get_u32("phase count")? as usize;
    if phase_count != PHASE_COUNT {
        return Err(frame_err(at, format!("phase count {phase_count} != {PHASE_COUNT}")));
    }
    let mut phases = PhaseStats::default();
    for i in 0..PHASE_COUNT {
        phases.nanos[i] = c.get_u64("phase nanos")?;
        phases.items[i] = c.get_u64("phase items")?;
    }
    let fcount = c.get_u32("failure count")? as usize;
    // A failure is at least 5 bytes (graph id + status code).
    c.check_count(fcount, 5, "failures")?;
    let mut failures = Vec::with_capacity(fcount);
    for _ in 0..fcount {
        let graph = GraphId(c.get_u32("failure graph id")?);
        failures.push(GraphFailure { graph, status: get_status(c)? });
    }
    Ok(WireOutcome {
        status,
        candidates,
        filter_nanos,
        verify_nanos,
        aux_bytes,
        retries,
        failures,
        kernel,
        phases,
    })
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match kind {
        1 => {
            let version = c.get_u32("hello version")?;
            let at = c.offset();
            let role = match c.get_u8("peer role")? {
                0 => PeerRole::Coordinator,
                1 => PeerRole::Client,
                r => return Err(frame_err(at, format!("unknown peer role {r}"))),
            };
            Message::Hello {
                version,
                role,
                db_fp: c.get_u64("db fingerprint")?,
                shards: c.get_u32("shard count")?,
                shard_index: c.get_u32("shard index")?,
            }
        }
        2 => Message::HelloAck {
            version: c.get_u32("ack version")?,
            db_fp: c.get_u64("db fingerprint")?,
            graphs: c.get_u32("graph count")?,
        },
        3 => {
            let id = c.get_u64("query id")?;
            let budget_ms = c.get_u64("budget ms")?;
            let graph = get_graph(&mut c)?;
            Message::Query { id, budget_ms, graph }
        }
        4 => {
            let id = c.get_u64("answers id")?;
            let n = c.get_u32("answer count")? as usize;
            c.check_count(n, 4, "answer ids")?;
            let mut graphs = Vec::with_capacity(n);
            for _ in 0..n {
                graphs.push(GraphId(c.get_u32("answer id")?));
            }
            Message::Answers { id, graphs }
        }
        5 => {
            let id = c.get_u64("outcome id")?;
            let outcome = get_outcome(&mut c)?;
            Message::Outcome { id, outcome }
        }
        6 => Message::Error { message: c.get_str("error message")? },
        7 => Message::MetricsRequest,
        8 => Message::MetricsText { text: c.get_str("metrics text")? },
        9 => Message::Bye,
        k => return Err(frame_err(4, format!("unknown frame kind {k}"))),
    };
    c.done()?;
    Ok(msg)
}

/// Decodes one complete frame from a byte slice (the whole frame must be
/// present; the stream path is [`read_frame`]).
pub fn decode_frame(bytes: &[u8], config: &WireConfig) -> Result<Message, WireError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(frame_err(
            bytes.len(),
            format!("truncated frame: {} bytes < minimum {}", bytes.len(), HEADER_LEN + 8),
        ));
    }
    if &bytes[..4] != WIRE_MAGIC {
        return Err(frame_err(0, "bad magic (expected \"SQPW\")"));
    }
    let kind = bytes[4];
    let len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    if len > config.max_frame_len {
        return Err(frame_err(
            5,
            format!("declared frame length {len} exceeds cap {}", config.max_frame_len),
        ));
    }
    let want = HEADER_LEN + len as usize + 8;
    if bytes.len() != want {
        return Err(frame_err(
            HEADER_LEN.min(bytes.len()),
            format!("frame is {} bytes, header declares {}", bytes.len(), want),
        ));
    }
    let body = &bytes[..want - 8];
    let sum = u64::from_le_bytes(bytes[want - 8..want].try_into().unwrap_or([0; 8]));
    if fnv1a64(body) != sum {
        return Err(frame_err(want - 8, "checksum mismatch (frame corrupted in transit)"));
    }
    decode_payload(kind, &bytes[HEADER_LEN..HEADER_LEN + len as usize])
}

/// Writes one message as a frame.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), WireError> {
    w.write_all(&encode_frame(msg))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a stream. The declared payload length is checked
/// against [`WireConfig::max_frame_len`] *before* the payload buffer is
/// allocated. A clean EOF before the first header byte is
/// [`WireError::Closed`]; EOF anywhere inside a frame is a truncation
/// error.
pub fn read_frame(r: &mut impl Read, config: &WireConfig) -> Result<Message, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish a clean close (no bytes at all) from a torn header.
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Closed),
            Ok(0) => {
                return Err(frame_err(
                    got,
                    format!("stream ended inside the {HEADER_LEN}-byte frame header"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if &header[..4] != WIRE_MAGIC {
        return Err(frame_err(0, "bad magic (expected \"SQPW\")"));
    }
    let kind = header[4];
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > config.max_frame_len {
        // Refuse before allocating: a corrupt or hostile length cannot
        // drive an out-of-memory abort.
        return Err(frame_err(
            5,
            format!("declared frame length {len} exceeds cap {}", config.max_frame_len),
        ));
    }
    let mut rest = vec![0u8; len as usize + 8];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            frame_err(HEADER_LEN, "stream ended inside the frame body")
        } else {
            WireError::Io(e)
        }
    })?;
    let mut body = Vec::with_capacity(HEADER_LEN + len as usize);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..len as usize]);
    let sum = u64::from_le_bytes(rest[len as usize..].try_into().unwrap_or([0; 8]));
    if fnv1a64(&body) != sum {
        return Err(frame_err(
            HEADER_LEN + len as usize,
            "checksum mismatch (frame corrupted in transit)",
        ));
    }
    decode_payload(kind, &body[HEADER_LEN..])
}

// ---------------------------------------------------------------------------
// Network chaos: the transport-level sibling of `ChaosMatcher`.

/// What [`WireChaos`] decided to do to one outbound frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// Swallow the frame entirely (the peer sees silence, then a broken
    /// or idle connection).
    Drop,
    /// Send only a prefix of the frame, then sever the connection.
    Truncate,
    /// Flip one bit of the frame (the checksum must catch it).
    CorruptBit,
    /// Sleep before sending (deadline pressure without data loss).
    Delay,
}

/// Deterministic per-frame fault plan for the network chaos layer.
///
/// Fault decisions are a pure function of `(seed, frame sequence number)`
/// — the transport-level analogue of [`ChaosMatcher`]'s
/// fingerprint-keyed plan — so a loopback chaos run is reproducible at any
/// thread count. Rates are per-mille slices of the hash space, checked in
/// the order drop, truncate, corrupt, delay.
///
/// [`ChaosMatcher`]: crate::chaos::ChaosMatcher
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireChaosConfig {
    /// Seed mixed into every per-frame decision.
    pub seed: u64,
    /// Frames dropped, per mille.
    pub drop_per_mille: u16,
    /// Frames truncated mid-body, per mille.
    pub truncate_per_mille: u16,
    /// Frames with one bit flipped, per mille.
    pub corrupt_per_mille: u16,
    /// Frames delayed by [`delay_ms`](WireChaosConfig::delay_ms), per mille.
    pub delay_per_mille: u16,
    /// Delay applied to delayed frames, in milliseconds.
    pub delay_ms: u64,
}

/// Stateful applier of a [`WireChaosConfig`]: counts outbound frames and
/// mangles each according to the deterministic plan.
#[derive(Debug, Default)]
pub struct WireChaos {
    config: WireChaosConfig,
    sent: AtomicU64,
}

impl Clone for WireChaos {
    fn clone(&self) -> Self {
        Self { config: self.config, sent: AtomicU64::new(self.sent.load(Ordering::Relaxed)) }
    }
}

/// Structural equality via the deterministic frame encoding (graphs have
/// no intrinsic `PartialEq`; two messages are equal iff their frames are
/// byte-identical). Test-grade cost, correctness-grade semantics.
impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        encode_frame(self) == encode_frame(other)
    }
}

impl WireChaos {
    /// A chaos layer with the given plan.
    pub fn new(config: WireChaosConfig) -> Self {
        Self { config, sent: AtomicU64::new(0) }
    }

    /// The fault planned for frame number `index` — pure, for tests and
    /// for [`next_fault`](WireChaos::next_fault).
    pub fn planned_fault(&self, index: u64) -> Option<WireFault> {
        let mut h = self.config.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in index.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let roll = (h % 1000) as u16;
        let c = &self.config;
        let mut edge = c.drop_per_mille;
        if roll < edge {
            return Some(WireFault::Drop);
        }
        edge = edge.saturating_add(c.truncate_per_mille);
        if roll < edge {
            return Some(WireFault::Truncate);
        }
        edge = edge.saturating_add(c.corrupt_per_mille);
        if roll < edge {
            return Some(WireFault::CorruptBit);
        }
        edge = edge.saturating_add(c.delay_per_mille);
        if roll < edge {
            return Some(WireFault::Delay);
        }
        None
    }

    /// Advances the frame counter and returns the fault for the frame
    /// about to be sent.
    pub fn next_fault(&self) -> Option<WireFault> {
        let index = self.sent.fetch_add(1, Ordering::Relaxed);
        self.planned_fault(index)
    }

    /// Applies the planned fault to an encoded frame: returns the bytes to
    /// actually send (possibly truncated or corrupted), or `None` when the
    /// frame is dropped. Sleeps for delayed frames.
    pub fn mangle(&self, mut frame: Vec<u8>) -> Option<Vec<u8>> {
        match self.next_fault() {
            None => Some(frame),
            Some(WireFault::Drop) => None,
            Some(WireFault::Truncate) => {
                frame.truncate(frame.len() / 2);
                Some(frame)
            }
            Some(WireFault::CorruptBit) => {
                // Deterministic bit choice: middle byte, low bit — enough
                // to break the checksum, stable across runs.
                let i = frame.len() / 2;
                frame[i] ^= 1;
                Some(frame)
            }
            Some(WireFault::Delay) => {
                std::thread::sleep(Duration::from_millis(self.config.delay_ms));
                Some(frame)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(Label(3));
        let v = b.add_vertex(Label(1));
        let w = b.add_vertex(Label(2));
        b.add_edge(u, v).unwrap();
        b.add_edge(v, w).unwrap();
        b.build()
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                version: WIRE_VERSION,
                role: PeerRole::Coordinator,
                db_fp: 0xdead_beef,
                shards: 3,
                shard_index: 1,
            },
            Message::HelloAck { version: WIRE_VERSION, db_fp: 7, graphs: 40 },
            Message::Query { id: 9, budget_ms: 1500, graph: small_graph() },
            Message::Answers { id: 9, graphs: vec![GraphId(0), GraphId(5), GraphId(17)] },
            Message::Outcome {
                id: 9,
                outcome: WireOutcome {
                    status: QueryStatus::Panicked { message: "boom".into() },
                    candidates: 12,
                    filter_nanos: 1000,
                    verify_nanos: 2000,
                    aux_bytes: 64,
                    retries: 2,
                    failures: vec![GraphFailure {
                        graph: GraphId(5),
                        status: QueryStatus::Unavailable,
                    }],
                    ..Default::default()
                },
            },
            Message::Error { message: "no such shard".into() },
            Message::MetricsRequest,
            Message::MetricsText { text: "# HELP x\n".into() },
            Message::Bye,
        ]
    }

    #[test]
    fn frames_round_trip() {
        let config = WireConfig::default();
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            let back = decode_frame(&frame, &config).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn stream_round_trip_preserves_order() {
        let config = WireConfig::default();
        let msgs = sample_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut r = &stream[..];
        for m in &msgs {
            assert_eq!(&read_frame(&mut r, &config).unwrap(), m);
        }
        assert!(matches!(read_frame(&mut r, &config), Err(WireError::Closed)));
    }

    #[test]
    fn graph_round_trips_structurally() {
        let g = small_graph();
        let msg = Message::Query { id: 0, budget_ms: 0, graph: g.clone() };
        let frame = encode_frame(&msg);
        let Message::Query { graph, .. } = decode_frame(&frame, &WireConfig::default()).unwrap()
        else {
            panic!("wrong kind")
        };
        assert_eq!(graph.vertex_count(), g.vertex_count());
        assert_eq!(graph.edge_count(), g.edge_count());
        assert_eq!(crate::chaos::graph_fingerprint(&graph), crate::chaos::graph_fingerprint(&g));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let config = WireConfig { max_frame_len: 1024 };
        // Hand-build a header declaring a 3 GiB payload; if the cap check
        // ran after allocation this test would OOM, not fail an assert.
        let mut frame = Vec::new();
        frame.extend_from_slice(WIRE_MAGIC);
        frame.push(9); // Bye
        frame.extend_from_slice(&(3u32 << 30).to_le_bytes());
        frame.extend_from_slice(&[0; 8]);
        let err = read_frame(&mut &frame[..], &config).unwrap_err();
        match err {
            WireError::Frame(GraphError::Binary { message, .. }) => {
                assert!(message.contains("exceeds cap"), "{message}");
            }
            other => panic!("expected frame error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_frame_fails_checksum() {
        let config = WireConfig::default();
        let frame = encode_frame(&Message::Answers { id: 1, graphs: vec![GraphId(2)] });
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_frame(&bad, &config).is_err(),
                "single-bit corruption at bit {bit} must not decode"
            );
        }
    }

    #[test]
    fn truncated_frame_fails_closed() {
        let config = WireConfig::default();
        let frame = encode_frame(&Message::Query { id: 3, budget_ms: 10, graph: small_graph() });
        for len in 0..frame.len() {
            let err = decode_frame(&frame[..len], &config);
            assert!(err.is_err(), "truncation to {len} bytes must not decode");
            let mut r = &frame[..len];
            match read_frame(&mut r, &config) {
                Err(_) => {}
                Ok(m) => panic!("stream truncated to {len} bytes decoded {m:?}"),
            }
        }
    }

    #[test]
    fn absurd_counts_fail_before_allocating() {
        // An Answers frame declaring u32::MAX ids with a tiny payload.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, u32::MAX);
        let mut frame = Vec::new();
        frame.extend_from_slice(WIRE_MAGIC);
        frame.push(4);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let sum = fnv1a64(&frame);
        frame.extend_from_slice(&sum.to_le_bytes());
        let err = decode_frame(&frame, &WireConfig::default()).unwrap_err();
        match err {
            WireError::Frame(GraphError::Binary { message, .. }) => {
                assert!(message.contains("absurd count"), "{message}");
            }
            other => panic!("expected count validation error, got {other:?}"),
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_and_rate_shaped() {
        let chaos = WireChaos::new(WireChaosConfig {
            seed: 42,
            drop_per_mille: 100,
            truncate_per_mille: 100,
            corrupt_per_mille: 100,
            delay_per_mille: 0,
            delay_ms: 0,
        });
        let plan: Vec<_> = (0..1000).map(|i| chaos.planned_fault(i)).collect();
        let replay: Vec<_> = (0..1000).map(|i| chaos.planned_fault(i)).collect();
        assert_eq!(plan, replay);
        let faulted = plan.iter().filter(|f| f.is_some()).count();
        assert!((150..=450).contains(&faulted), "~300/1000 expected, got {faulted}");
    }

    #[test]
    fn chaos_mangle_breaks_frames_detectably() {
        let chaos = WireChaos::new(WireChaosConfig {
            seed: 7,
            corrupt_per_mille: 1000,
            ..Default::default()
        });
        let frame = encode_frame(&Message::Bye);
        let mangled = chaos.mangle(frame.clone()).unwrap();
        assert_ne!(mangled, frame);
        assert!(decode_frame(&mangled, &WireConfig::default()).is_err());
    }
}
