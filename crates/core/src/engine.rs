//! The [`QueryEngine`] abstraction shared by all eight competing algorithms.

use std::sync::Arc;
use std::time::Duration;

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb};
use sqp_index::{BuildBudget, BuildError};

/// The paper's three algorithm categories (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineCategory {
    /// Indexing-filtering-verification (Algorithm 1).
    Ifv,
    /// Vertex-connectivity-based filtering-verification (Algorithm 2).
    VcFv,
    /// Index + vertex-connectivity filtering (two-level).
    IvcFv,
}

impl std::fmt::Display for EngineCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineCategory::Ifv => write!(f, "IFV"),
            EngineCategory::VcFv => write!(f, "vcFV"),
            EngineCategory::IvcFv => write!(f, "IvcFV"),
        }
    }
}

/// Result of the indexing step.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildReport {
    /// Wall time of index construction (zero for index-free engines).
    pub build_time: Duration,
    /// Heap bytes held by the index (zero for index-free engines).
    pub index_bytes: usize,
}

/// Result of processing one query.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// The answer set `A(q)`: ids of data graphs containing `q`.
    pub answers: Vec<GraphId>,
    /// `|C(q)|`: data graphs that survived filtering (and were therefore
    /// subjected to a subgraph isomorphism test).
    pub candidates: usize,
    /// Time in the filtering step. For vcFV/IvcFV this includes candidate
    /// vertex set construction (§IV-A, *Filtering Time*).
    pub filter_time: Duration,
    /// Time in the verification step.
    pub verify_time: Duration,
    /// Whether the per-query budget expired (recorded at the limit, as in
    /// the paper).
    pub timed_out: bool,
    /// Peak heap bytes of per-query auxiliary structures (candidate vertex
    /// sets / CPI) — the vcFV column of Tables VII and IX.
    pub aux_bytes: usize,
}

impl QueryOutcome {
    /// Total query time (filtering + verification).
    pub fn query_time(&self) -> Duration {
        self.filter_time + self.verify_time
    }
}

/// A subgraph query processing engine.
///
/// Lifecycle: construct with algorithm-specific configuration, [`build`]
/// once per database, then [`query`] any number of times.
///
/// [`build`]: QueryEngine::build
/// [`query`]: QueryEngine::query
pub trait QueryEngine: Send {
    /// Engine name as used in the paper's figures (e.g. `"CFQL"`).
    fn name(&self) -> &'static str;

    /// Which of the three categories the engine belongs to.
    fn category(&self) -> EngineCategory;

    /// Indexing step. Index-free (vcFV) engines only record the database.
    /// Errors surface the paper's OOT/OOM outcomes.
    fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError>;

    /// Processes one query within the configured per-query budget.
    ///
    /// # Panics
    /// Panics if called before a successful [`build`](QueryEngine::build).
    fn query(&self, q: &Graph) -> QueryOutcome;

    /// Sets the per-query time budget (default: none).
    fn set_query_budget(&mut self, budget: Option<Duration>);

    /// Sets the index-construction budget (the paper's 24 h / 64 GB limits).
    /// No-op for index-free (vcFV) engines.
    fn set_build_budget(&mut self, budget: BuildBudget) {
        let _ = budget;
    }

    /// Heap bytes held by the index (0 for vcFV engines).
    fn index_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_display() {
        assert_eq!(EngineCategory::Ifv.to_string(), "IFV");
        assert_eq!(EngineCategory::VcFv.to_string(), "vcFV");
        assert_eq!(EngineCategory::IvcFv.to_string(), "IvcFV");
    }

    #[test]
    fn outcome_query_time_sums() {
        let o = QueryOutcome {
            filter_time: Duration::from_millis(3),
            verify_time: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(o.query_time(), Duration::from_millis(7));
    }
}
