//! The [`QueryEngine`] abstraction shared by all eight competing algorithms,
//! plus the structured per-query failure taxonomy ([`QueryStatus`]).

use std::sync::Arc;
use std::time::Duration;

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb};
use sqp_index::{BuildBudget, BuildError};
use sqp_matching::{Deadline, KernelStats, PhaseStats, ResourceKind, ResourceLimits};

/// The paper's three algorithm categories (Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineCategory {
    /// Indexing-filtering-verification (Algorithm 1).
    Ifv,
    /// Vertex-connectivity-based filtering-verification (Algorithm 2).
    VcFv,
    /// Index + vertex-connectivity filtering (two-level).
    IvcFv,
}

impl std::fmt::Display for EngineCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineCategory::Ifv => write!(f, "IFV"),
            EngineCategory::VcFv => write!(f, "vcFV"),
            EngineCategory::IvcFv => write!(f, "IvcFV"),
        }
    }
}

/// Result of the indexing step.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildReport {
    /// Wall time of index construction (zero for index-free engines).
    pub build_time: Duration,
    /// Heap bytes held by the index (zero for index-free engines).
    pub index_bytes: usize,
}

/// How one query ended: the structured failure taxonomy.
///
/// Ordered by severity — [`absorb`](QueryStatus::absorb) keeps the most
/// severe status when per-graph failures are merged into one outcome:
/// `Completed < TimedOut < ResourceExhausted < Quarantined < Panicked <
/// Wedged < Unavailable < Shed`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum QueryStatus {
    /// The query ran to completion; `answers` is the exact answer set.
    #[default]
    Completed,
    /// The per-query time budget expired (recorded at the limit, as in the
    /// paper). Answers gathered so far are sound but possibly incomplete.
    TimedOut,
    /// A per-query resource budget tripped before the wall clock did.
    /// Answers gathered so far are sound but possibly incomplete.
    ResourceExhausted {
        /// Which budget tripped.
        kind: ResourceKind,
    },
    /// At least one data graph was skipped because its circuit breaker was
    /// open (quarantined by the serving layer after repeated faults). As a
    /// per-graph failure it records the short-circuited graph; as an
    /// outcome-level status it means every answer from a live graph is
    /// present but the quarantined graphs were never consulted.
    Quarantined,
    /// Matching panicked on at least one (query, graph) pair. Answers from
    /// non-panicking graphs are preserved; the panicking pairs are listed in
    /// [`QueryOutcome::failures`].
    Panicked {
        /// The panic payload (downcast to a string where possible).
        message: String,
    },
    /// The supervisor escalated a worker that stopped ticking its deadline
    /// (stale heartbeat past `deadline + grace`): cooperative cancellation
    /// could never reach it, so the worker thread was abandoned and
    /// replaced. Answers gathered by other workers of the query are
    /// preserved; the wedged (query, graph) pair is listed in
    /// [`QueryOutcome::failures`].
    Wedged,
    /// The shard holding this graph could not be reached (dead, over
    /// budget, or returning garbage) after retries, so the graph was never
    /// consulted for this query. Answers from reachable shards are
    /// preserved; the unreachable graphs are listed in
    /// [`QueryOutcome::failures`] — a partial result, never a silent drop.
    /// Like [`Wedged`](QueryStatus::Wedged), unavailability is
    /// breaker-charging (it opens the *peer's* breaker in the coordinator)
    /// and censored from latency histograms (the query never ran there).
    Unavailable,
    /// The query was rejected by admission control (queue full, predicted
    /// deadline miss, or service draining) and never executed. A shed query
    /// produces no answers and no per-graph work at all, but still receives
    /// this terminal status — shedding is never a silent drop.
    Shed,
}

impl QueryStatus {
    /// Severity rank used by [`absorb`](QueryStatus::absorb).
    fn severity(&self) -> u8 {
        match self {
            QueryStatus::Completed => 0,
            QueryStatus::TimedOut => 1,
            QueryStatus::ResourceExhausted { .. } => 2,
            QueryStatus::Quarantined => 3,
            QueryStatus::Panicked { .. } => 4,
            QueryStatus::Wedged => 5,
            QueryStatus::Unavailable => 6,
            QueryStatus::Shed => 7,
        }
    }

    /// Whether the query ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, QueryStatus::Completed)
    }

    /// Whether the query timed out (wall clock only — resource exhaustion
    /// and panics are *not* timeouts).
    pub fn is_timed_out(&self) -> bool {
        matches!(self, QueryStatus::TimedOut)
    }

    /// Whether matching panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, QueryStatus::Panicked { .. })
    }

    /// Whether a resource budget tripped.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, QueryStatus::ResourceExhausted { .. })
    }

    /// Whether at least one graph was short-circuited by an open breaker.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, QueryStatus::Quarantined)
    }

    /// Whether the query was rejected by admission control without running.
    pub fn is_shed(&self) -> bool {
        matches!(self, QueryStatus::Shed)
    }

    /// Whether the supervisor abandoned a wedged worker on this query.
    pub fn is_wedged(&self) -> bool {
        matches!(self, QueryStatus::Wedged)
    }

    /// Whether the shard holding this graph was unreachable for this query.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, QueryStatus::Unavailable)
    }

    /// Whether this per-graph status counts as a breaker-relevant fault
    /// (panics, resource exhaustion, wedged workers, and unreachable
    /// shards — the failure modes a sick graph or peer inflicts on the
    /// service, as opposed to a query-wide timeout).
    pub fn is_breaker_fault(&self) -> bool {
        self.is_panicked() || self.is_exhausted() || self.is_wedged() || self.is_unavailable()
    }

    /// Merges `other` in: replaces `self` when `other` is strictly more
    /// severe. Equal-severity statuses keep the first observed (`self`).
    pub fn absorb(&mut self, other: QueryStatus) {
        if other.severity() > self.severity() {
            *self = other;
        }
    }

    /// Classifies an interrupted (Err([`Timeout`](sqp_matching::Timeout)))
    /// matcher call: a tripped [`ResourceGuard`](sqp_matching::ResourceGuard)
    /// on the deadline means resource exhaustion, otherwise the wall clock
    /// (or a sibling's cancellation) expired.
    pub fn from_interrupt(deadline: Deadline) -> Self {
        match deadline.guard().tripped() {
            Some(kind) => QueryStatus::ResourceExhausted { kind },
            None => QueryStatus::TimedOut,
        }
    }
}

impl std::fmt::Display for QueryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryStatus::Completed => write!(f, "completed"),
            QueryStatus::TimedOut => write!(f, "timed out"),
            QueryStatus::ResourceExhausted { kind } => write!(f, "exhausted {kind}"),
            QueryStatus::Quarantined => write!(f, "quarantined"),
            QueryStatus::Panicked { message } => write!(f, "panicked: {message}"),
            QueryStatus::Wedged => write!(f, "wedged"),
            QueryStatus::Unavailable => write!(f, "unavailable"),
            QueryStatus::Shed => write!(f, "shed"),
        }
    }
}

/// One failed (query, graph) pair inside a [`QueryOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphFailure {
    /// The data graph on which the failure was observed.
    pub graph: GraphId,
    /// What happened there.
    pub status: QueryStatus,
}

/// Result of processing one query.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// The answer set `A(q)`: ids of data graphs containing `q`.
    pub answers: Vec<GraphId>,
    /// `|C(q)|`: data graphs that survived filtering (and were therefore
    /// subjected to a subgraph isomorphism test).
    pub candidates: usize,
    /// Time in the filtering step. For vcFV/IvcFV this includes candidate
    /// vertex set construction (§IV-A, *Filtering Time*).
    pub filter_time: Duration,
    /// Time in the verification step.
    pub verify_time: Duration,
    /// How the query ended (most severe per-graph failure; see
    /// [`finalize`](QueryOutcome::finalize)).
    pub status: QueryStatus,
    /// Per-graph failure attribution, sorted by graph id after
    /// [`finalize`](QueryOutcome::finalize).
    pub failures: Vec<GraphFailure>,
    /// Peak heap bytes of per-query auxiliary structures (candidate vertex
    /// sets / CPI) — the vcFV column of Tables VII and IX.
    pub aux_bytes: usize,
    /// Enumeration-kernel counters accumulated across every matcher call of
    /// this query (all zeros for engines that never enter the shared
    /// enumerator, e.g. the VF2-based IFV engines).
    pub kernel: KernelStats,
    /// Per-phase span durations and item counts accumulated across every
    /// graph and worker of this query (see `sqp_matching::obs`). Durations
    /// are nanoseconds under the production clock; all zeros when no stats
    /// sink was attached.
    pub phases: PhaseStats,
    /// Name of the engine that actually served the query. Empty means "the
    /// engine the caller invoked" (the runners fill in the invoked engine's
    /// name when building records); routing layers (the adaptive engine,
    /// the service-side matcher router) stamp the resolved engine here so
    /// journals and telemetry identify who did the work.
    pub engine: String,
}

impl QueryOutcome {
    /// An outcome representing a query that panicked before producing any
    /// partial results (e.g. the sequential runner caught the unwind).
    pub fn panicked(message: String) -> Self {
        Self { status: QueryStatus::Panicked { message }, ..Default::default() }
    }

    /// An outcome for a query rejected by admission control: no answers, no
    /// per-graph records, terminal status [`QueryStatus::Shed`].
    pub fn shed() -> Self {
        Self { status: QueryStatus::Shed, ..Default::default() }
    }

    /// Total query time (filtering + verification).
    pub fn query_time(&self) -> Duration {
        self.filter_time + self.verify_time
    }

    /// Whether the per-query wall-clock budget expired (back-compat helper;
    /// resource exhaustion and panics are *not* timeouts).
    pub fn timed_out(&self) -> bool {
        self.status.is_timed_out()
    }

    /// Whether the query ended in any non-[`Completed`](QueryStatus::Completed)
    /// state.
    pub fn failed(&self) -> bool {
        !self.status.is_completed()
    }

    /// Records a panic on one (query, graph) pair. The outcome-level status
    /// materializes in [`finalize`](QueryOutcome::finalize) so that merge
    /// order (thread count) cannot influence which message wins.
    pub fn record_panic(&mut self, graph: GraphId, message: String) {
        self.failures.push(GraphFailure { graph, status: QueryStatus::Panicked { message } });
    }

    /// Records a graph short-circuited by an open circuit breaker: the
    /// matcher is never consulted for it, and the outcome-level status
    /// materializes in [`finalize`](QueryOutcome::finalize) like every other
    /// per-graph failure.
    pub fn record_quarantined(&mut self, graph: GraphId) {
        self.failures.push(GraphFailure { graph, status: QueryStatus::Quarantined });
    }

    /// Records a wedged worker abandoned on `graph`: the supervisor
    /// escalated a stale heartbeat, so this (query, graph) pair never
    /// produced a result and its worker thread is gone.
    pub fn record_wedged(&mut self, graph: GraphId) {
        self.failures.push(GraphFailure { graph, status: QueryStatus::Wedged });
    }

    /// Records a graph whose shard was unreachable (dead, over budget, or
    /// corrupting) for this query: the graph was never consulted, and the
    /// outcome-level status materializes in
    /// [`finalize`](QueryOutcome::finalize) like every other per-graph
    /// failure.
    pub fn record_unavailable(&mut self, graph: GraphId) {
        self.failures.push(GraphFailure { graph, status: QueryStatus::Unavailable });
    }

    /// Records an interrupted matcher call (timeout or resource exhaustion,
    /// classified from the deadline) observed on `graph`.
    pub fn record_interrupt(&mut self, graph: GraphId, deadline: Deadline) {
        let status = QueryStatus::from_interrupt(deadline);
        self.failures.push(GraphFailure { graph, status: status.clone() });
        self.status.absorb(status);
    }

    /// Deterministically folds per-graph failures into the outcome-level
    /// status: failures are sorted by graph id and absorbed in order, so the
    /// lowest-id graph with the most severe failure supplies the status (and
    /// panic message) regardless of worker interleaving or thread count.
    pub fn finalize(&mut self) {
        self.failures.sort_by_key(|f| f.graph);
        self.failures.dedup();
        for f in &self.failures {
            self.status.absorb(f.status.clone());
        }
    }
}

/// A subgraph query processing engine.
///
/// Lifecycle: construct with algorithm-specific configuration, [`build`]
/// once per database, then [`query`] any number of times.
///
/// [`build`]: QueryEngine::build
/// [`query`]: QueryEngine::query
pub trait QueryEngine: Send {
    /// Engine name as used in the paper's figures (e.g. `"CFQL"`).
    fn name(&self) -> &'static str;

    /// Which of the three categories the engine belongs to.
    fn category(&self) -> EngineCategory;

    /// Indexing step. Index-free (vcFV) engines only record the database.
    /// Errors surface the paper's OOT/OOM outcomes.
    fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError>;

    /// Processes one query within the configured per-query budget.
    ///
    /// # Panics
    /// Panics if called before a successful [`build`](QueryEngine::build).
    fn query(&self, q: &Graph) -> QueryOutcome;

    /// Sets the per-query time budget (default: none).
    fn set_query_budget(&mut self, budget: Option<Duration>);

    /// Sets the per-query resource budgets (enumeration steps, auxiliary
    /// bytes). Default: unlimited; engines that do not enforce budgets may
    /// ignore this.
    fn set_resource_limits(&mut self, limits: ResourceLimits) {
        let _ = limits;
    }

    /// Sets the index-construction budget (the paper's 24 h / 64 GB limits).
    /// No-op for index-free (vcFV) engines.
    fn set_build_budget(&mut self, budget: BuildBudget) {
        let _ = budget;
    }

    /// Heap bytes held by the index (0 for vcFV engines).
    fn index_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_display() {
        assert_eq!(EngineCategory::Ifv.to_string(), "IFV");
        assert_eq!(EngineCategory::VcFv.to_string(), "vcFV");
        assert_eq!(EngineCategory::IvcFv.to_string(), "IvcFV");
    }

    #[test]
    fn outcome_query_time_sums() {
        let o = QueryOutcome {
            filter_time: Duration::from_millis(3),
            verify_time: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(o.query_time(), Duration::from_millis(7));
    }

    #[test]
    fn status_severity_ordering() {
        let mut s = QueryStatus::Completed;
        s.absorb(QueryStatus::TimedOut);
        assert_eq!(s, QueryStatus::TimedOut);
        s.absorb(QueryStatus::Completed);
        assert_eq!(s, QueryStatus::TimedOut);
        s.absorb(QueryStatus::ResourceExhausted { kind: ResourceKind::Steps });
        assert!(s.is_exhausted());
        s.absorb(QueryStatus::Panicked { message: "boom".into() });
        assert!(s.is_panicked());
        // Equal severity keeps the first observed.
        s.absorb(QueryStatus::Panicked { message: "later".into() });
        assert_eq!(s, QueryStatus::Panicked { message: "boom".into() });
        s.absorb(QueryStatus::Wedged);
        assert!(s.is_wedged());
        s.absorb(QueryStatus::Unavailable);
        assert!(s.is_unavailable());
        s.absorb(QueryStatus::Shed);
        assert_eq!(s, QueryStatus::Shed);
    }

    #[test]
    fn unavailable_is_a_breaker_fault() {
        assert!(QueryStatus::Unavailable.is_breaker_fault());
        let mut o = QueryOutcome::default();
        o.record_unavailable(GraphId(7));
        o.record_unavailable(GraphId(2));
        o.finalize();
        assert_eq!(o.status, QueryStatus::Unavailable);
        assert_eq!(o.failures[0].graph, GraphId(2));
        assert_eq!(o.failures[1].graph, GraphId(7));
    }

    #[test]
    fn wedged_is_a_breaker_fault() {
        assert!(QueryStatus::Wedged.is_breaker_fault());
        assert!(!QueryStatus::TimedOut.is_breaker_fault());
        let mut o = QueryOutcome::default();
        o.record_wedged(GraphId(3));
        o.finalize();
        assert_eq!(o.status, QueryStatus::Wedged);
        assert_eq!(o.failures[0].graph, GraphId(3));
    }

    #[test]
    fn finalize_is_order_independent() {
        let failures =
            [(GraphId(7), "late panic"), (GraphId(2), "early panic"), (GraphId(5), "middle panic")];
        // Any insertion order must yield the same status and failure list.
        let mut outcomes: Vec<QueryOutcome> = Vec::new();
        for rotation in 0..failures.len() {
            let mut o = QueryOutcome::default();
            for i in 0..failures.len() {
                let (gid, msg) = failures[(rotation + i) % failures.len()];
                o.record_panic(gid, msg.to_string());
            }
            o.finalize();
            outcomes.push(o);
        }
        for o in &outcomes {
            assert_eq!(o.status, QueryStatus::Panicked { message: "early panic".into() });
            assert_eq!(o.failures.len(), 3);
            assert_eq!(o.failures[0].graph, GraphId(2));
            assert_eq!(o.failures[2].graph, GraphId(7));
        }
    }

    #[test]
    fn interrupt_classification_prefers_guard() {
        use sqp_matching::{ResourceGuard, ResourceLimits};
        let d = Deadline::none();
        assert_eq!(QueryStatus::from_interrupt(d), QueryStatus::TimedOut);
        let guard = ResourceGuard::new();
        guard.reset(ResourceLimits::unlimited().with_max_steps(1));
        guard.charge_steps(2);
        let d = Deadline::none().with_guard(guard);
        assert_eq!(
            QueryStatus::from_interrupt(d),
            QueryStatus::ResourceExhausted { kind: ResourceKind::Steps }
        );
    }
}
