//! Verification strategies shared by the engines.

use sqp_graph::Graph;
use sqp_matching::obs::{Phase, Span};
use sqp_matching::vf2::{Vf2, Vf2Ordering};
use sqp_matching::{Deadline, Timeout};

/// A subgraph-isomorphism-test verifier for IFV engines (the paper: VF2,
/// optionally with CT-Index's ordering heuristics).
#[derive(Clone, Copy, Debug)]
pub struct Vf2Verifier {
    vf2: Vf2,
}

impl Vf2Verifier {
    /// Classic VF2 (used by Grapes and GGSX).
    pub fn classic() -> Self {
        Self { vf2: Vf2::new() }
    }

    /// CT-Index's modified VF2 with rare-label-first ordering.
    pub fn ct_index() -> Self {
        Self { vf2: Vf2::with_ordering(Vf2Ordering::RareLabelFirst) }
    }

    /// Whether `q ⊆ g`, within the deadline.
    pub fn verify(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<bool, Timeout> {
        let mut span = Span::enter(Phase::Verify, deadline);
        span.add_items(1);
        self.vf2.is_subgraph(q, g, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    #[test]
    fn both_variants_agree() {
        let q = labeled(&[0, 1], &[(0, 1)]);
        let g = labeled(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let d = Deadline::none();
        assert!(Vf2Verifier::classic().verify(&q, &g, d).unwrap());
        assert!(Vf2Verifier::ct_index().verify(&q, &g, d).unwrap());
        let q2 = labeled(&[0, 2], &[(0, 1)]);
        assert!(!Vf2Verifier::classic().verify(&q2, &g, d).unwrap());
        assert!(!Vf2Verifier::ct_index().verify(&q2, &g, d).unwrap());
    }
}
