//! Query and query-set metrics (§IV-A of the paper), with the structured
//! failure taxonomy rolled up per query set, per-phase timing breakdowns,
//! and fixed-bucket latency histograms.

use std::time::Duration;

use sqp_matching::{KernelStats, Phase, PhaseStats};

use crate::engine::{GraphFailure, QueryOutcome, QueryStatus};

/// Number of buckets in a [`LatencyHistogram`]: one zero bucket plus one per
/// possible `u64` bit length.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 latency histogram with exact merge semantics.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]` — i.e. values of bit length `i`. Because bucket
/// boundaries are fixed (no adaptive resizing), merging two histograms is an
/// element-wise count addition and loses nothing: `merge(a, b)` has exactly
/// the bucket counts of the concatenated sample streams, which is what lets
/// per-worker and per-engine histograms be combined after the fact.
///
/// Quantiles are resolved to the *upper edge* of the bucket containing the
/// requested rank, so an estimate is always an upper bound within one
/// power of two of the true order statistic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { counts: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram of every sample in `iter`.
    pub fn from_samples(iter: impl IntoIterator<Item = u64>) -> Self {
        let mut h = Self::new();
        for v in iter {
            h.record(v);
        }
        h
    }

    /// The bucket index holding `value` (its bit length).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `i` can hold.
    pub fn upper_edge(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds `other`'s samples into `self` (exact: element-wise bucket-count
    /// addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            self.counts[i] = self.counts[i].saturating_add(other.counts[i]);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// The upper bucket edge containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`), or `None` for an empty histogram. Never panics:
    /// out-of-range `q` is clamped.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested order statistic, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(Self::upper_edge(i));
            }
        }
        // Unreachable while count == Σ counts; stay total anyway.
        Some(Self::upper_edge(HISTOGRAM_BUCKETS - 1))
    }

    /// Median upper bound (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound (`None` when empty).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound (`None` when empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// One query's measurements.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Time in the filtering step.
    pub filter_time: Duration,
    /// Time in the verification step.
    pub verify_time: Duration,
    /// `|C(q)|`.
    pub candidates: usize,
    /// `|A(q)|`.
    pub answers: usize,
    /// How the query ended.
    pub status: QueryStatus,
    /// Per-graph failure attribution (sorted by graph id).
    pub failures: Vec<GraphFailure>,
    /// How many times the runner retried this query after a panic.
    pub retries: u32,
    /// Peak auxiliary-structure bytes.
    pub aux_bytes: usize,
    /// Enumeration-kernel counters (intersections, galloping passes, bitmap
    /// probes) accumulated across the query's matcher calls.
    pub kernel: KernelStats,
    /// Per-phase wall time (nanoseconds) and item counts accumulated by the
    /// tracing spans. Zeros when the query ran without a stats sink. Unlike
    /// `filter_time`/`verify_time`, phase nanos are never rescaled on
    /// timeout — they stay raw so histograms can exclude censored records
    /// instead of mixing in synthetic values.
    pub phases: PhaseStats,
    /// Name of the engine that served this query. The runners resolve it —
    /// the outcome's stamped engine when a routing layer set one, otherwise
    /// the invoked engine — so per-record attribution survives adaptive
    /// routing (the report-level engine name only says who was *asked*).
    pub engine: String,
}

impl Default for QueryRecord {
    fn default() -> Self {
        Self {
            filter_time: Duration::ZERO,
            verify_time: Duration::ZERO,
            candidates: 0,
            answers: 0,
            status: QueryStatus::Completed,
            failures: Vec::new(),
            retries: 0,
            aux_bytes: 0,
            kernel: KernelStats::default(),
            phases: PhaseStats::default(),
            engine: String::new(),
        }
    }
}

impl QueryRecord {
    /// Builds a record from an engine outcome, pinning a timed-out query's
    /// total to exactly `budget` (the paper records timeouts at the
    /// 10-minute limit). Measured totals can land on either side of the
    /// budget — over it when the last matcher call overshoots the deadline,
    /// under it when a parallel worker stops early on cooperative
    /// cancellation — so the times are rescaled in both directions,
    /// preserving the filter/verify split. Only wall-clock timeouts are
    /// pinned; panicked and resource-exhausted queries keep their measured
    /// times (they did not run to the limit).
    pub fn from_outcome(outcome: &QueryOutcome, budget: Option<Duration>) -> Self {
        let mut filter_time = outcome.filter_time;
        let mut verify_time = outcome.verify_time;
        if outcome.status.is_timed_out() {
            if let Some(b) = budget {
                let total = filter_time + verify_time;
                if total.is_zero() {
                    // Nothing measured (timed out before the first phase
                    // tick): attribute the whole budget to filtering.
                    filter_time = b;
                    verify_time = Duration::ZERO;
                } else {
                    let scale = b.as_secs_f64() / total.as_secs_f64();
                    filter_time = filter_time.mul_f64(scale);
                    verify_time = verify_time.mul_f64(scale);
                }
            }
        }
        Self {
            filter_time,
            verify_time,
            candidates: outcome.candidates,
            answers: outcome.answers.len(),
            status: outcome.status.clone(),
            failures: outcome.failures.clone(),
            retries: 0,
            aux_bytes: outcome.aux_bytes,
            kernel: outcome.kernel,
            phases: outcome.phases,
            engine: outcome.engine.clone(),
        }
    }

    /// Fills in the engine attribution when the outcome carried none (no
    /// routing layer stamped it): the invoked engine served the query.
    pub fn with_engine_fallback(mut self, engine: &str) -> Self {
        if self.engine.is_empty() {
            self.engine = engine.to_string();
        }
        self
    }

    /// Total query time.
    pub fn query_time(&self) -> Duration {
        self.filter_time + self.verify_time
    }

    /// Whether the wall-clock budget expired (back-compat helper).
    pub fn timed_out(&self) -> bool {
        self.status.is_timed_out()
    }
}

/// Aggregated measurements of one engine on one query set.
#[derive(Clone, Debug, Default)]
pub struct QuerySetReport {
    /// Engine name (e.g. `"CFQL"`).
    pub engine: String,
    /// Query-set name (e.g. `"Q8S"`).
    pub query_set: String,
    /// Per-query records, in query order.
    pub records: Vec<QueryRecord>,
}

impl QuerySetReport {
    /// Creates an empty report.
    pub fn new(engine: impl Into<String>, query_set: impl Into<String>) -> Self {
        Self { engine: engine.into(), query_set: query_set.into(), records: Vec::new() }
    }

    fn mean(&self, f: impl Fn(&QueryRecord) -> f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(f).sum::<f64>() / self.records.len() as f64
    }

    /// Average query time in milliseconds.
    pub fn avg_query_ms(&self) -> f64 {
        self.mean(|r| r.query_time().as_secs_f64() * 1e3)
    }

    /// Average filtering time in milliseconds.
    pub fn avg_filter_ms(&self) -> f64 {
        self.mean(|r| r.filter_time.as_secs_f64() * 1e3)
    }

    /// Average verification time in milliseconds.
    pub fn avg_verify_ms(&self) -> f64 {
        self.mean(|r| r.verify_time.as_secs_f64() * 1e3)
    }

    /// Filtering precision (Eq. 1): mean over queries of `|A(q)| / |C(q)|`.
    /// Queries with an empty candidate set count as precision 1 (the filter
    /// was perfect: nothing to verify, nothing missed).
    pub fn filtering_precision(&self) -> f64 {
        self.mean(|r| if r.candidates == 0 { 1.0 } else { r.answers as f64 / r.candidates as f64 })
    }

    /// Average `|C(q)|` (Figure 6).
    pub fn avg_candidates(&self) -> f64 {
        self.mean(|r| r.candidates as f64)
    }

    /// Average `|A(q)|`.
    pub fn avg_answers(&self) -> f64 {
        self.mean(|r| r.answers as f64)
    }

    /// Per-SI-test time in milliseconds (Eq. 3): mean over queries of
    /// `verification time / |C(q)|`; queries with no candidates contribute 0.
    pub fn per_si_test_ms(&self) -> f64 {
        self.mean(|r| {
            if r.candidates == 0 {
                0.0
            } else {
                r.verify_time.as_secs_f64() * 1e3 / r.candidates as f64
            }
        })
    }

    /// Number of queries that exceeded the wall-clock budget (only; panics
    /// and resource exhaustion are counted separately).
    pub fn timeout_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_timed_out()).count()
    }

    /// Number of queries that panicked (after exhausting any retries).
    pub fn panic_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_panicked()).count()
    }

    /// Number of queries that tripped a resource budget.
    pub fn exhausted_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_exhausted()).count()
    }

    /// Number of queries rejected by admission control (never executed).
    pub fn shed_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_shed()).count()
    }

    /// Number of queries whose most severe failure was an open-breaker
    /// short-circuit (some graphs quarantined, everything else clean).
    pub fn quarantined_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_quarantined()).count()
    }

    /// Number of queries escalated by the supervisor (a worker stopped
    /// ticking and was abandoned).
    pub fn wedged_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_wedged()).count()
    }

    /// Number of queries whose most severe failure was an unreachable shard
    /// (partial results: graphs on dead/over-budget peers never consulted).
    pub fn unavailable_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_unavailable()).count()
    }

    /// Number of queries that ended in any non-completed state.
    pub fn failure_count(&self) -> usize {
        self.records.iter().filter(|r| !r.status.is_completed()).count()
    }

    /// Total retry attempts spent across the set.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// Fraction of queries that completed (any failure mode counts against
    /// completion).
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        1.0 - self.failure_count() as f64 / self.records.len() as f64
    }

    /// Peak auxiliary bytes across the set.
    pub fn max_aux_bytes(&self) -> usize {
        self.records.iter().map(|r| r.aux_bytes).max().unwrap_or(0)
    }

    /// Enumeration-kernel counters summed across the set.
    pub fn kernel_totals(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for r in &self.records {
            total.merge(&r.kernel);
        }
        total
    }

    /// The paper omits an algorithm's results on a query set when it fails
    /// more than 40% of the queries; this implements that cutoff.
    pub fn should_omit(&self) -> bool {
        self.completion_rate() < 0.6
    }

    /// Whether a record's timings are censored: timed-out records are pinned
    /// to exactly the budget by `QueryRecord::from_outcome` and shed records
    /// never executed, so neither carries a real latency observation.
    fn is_censored(r: &QueryRecord) -> bool {
        r.status.is_timed_out()
            || r.status.is_shed()
            || r.status.is_wedged()
            || r.status.is_unavailable()
    }

    /// Number of records excluded from the latency/phase histograms because
    /// their timings are censored (pinned at the budget or never run). The
    /// mean-based accessors (`avg_query_ms` &c.) still include pinned
    /// timeouts, matching the paper's convention; the histograms do not.
    pub fn censored_count(&self) -> usize {
        self.records.iter().filter(|r| Self::is_censored(r)).count()
    }

    /// Histogram of end-to-end query latency (nanoseconds) over uncensored
    /// records.
    pub fn latency_histogram(&self) -> LatencyHistogram {
        LatencyHistogram::from_samples(
            self.records
                .iter()
                .filter(|r| !Self::is_censored(r))
                .map(|r| r.query_time().as_nanos().min(u128::from(u64::MAX)) as u64),
        )
    }

    /// Histogram of one phase's per-query time (nanoseconds) over uncensored
    /// records.
    pub fn phase_histogram(&self, phase: Phase) -> LatencyHistogram {
        LatencyHistogram::from_samples(
            self.records.iter().filter(|r| !Self::is_censored(r)).map(|r| r.phases.nanos_of(phase)),
        )
    }

    /// Per-phase nanos and item counts summed over uncensored records (the
    /// `compare --phases` table rows).
    pub fn phase_totals(&self) -> PhaseStats {
        let mut total = PhaseStats::default();
        for r in self.records.iter().filter(|r| !Self::is_censored(r)) {
            total.merge(&r.phases);
        }
        total
    }

    /// Total uncensored wall time in nanoseconds (denominator for checking
    /// that the phase breakdown accounts for the measured wall time).
    pub fn uncensored_wall_nanos(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| !Self::is_censored(r))
            .map(|r| r.query_time().as_nanos().min(u128::from(u64::MAX)) as u64)
            .fold(0u64, u64::saturating_add)
    }
}

/// A point-in-time snapshot of a `QueryService`'s serving state: queue and
/// breaker occupancy plus monotonic degradation counters. Produced by
/// `QueryService::health`; all counters are totals since service start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Queries admitted but not yet started.
    pub queue_depth: usize,
    /// Queries currently executing (0 or 1 — the pool serializes queries).
    pub inflight: usize,
    /// Whether the service has stopped admitting (drain in progress).
    pub draining: bool,
    /// Queries admitted since start.
    pub admitted: u64,
    /// Admitted queries that reached a terminal status through execution.
    pub finished: u64,
    /// Queries shed because the submission queue was full.
    pub shed_queue_full: u64,
    /// Queries shed because the predicted wait + service time exceeded the
    /// query budget.
    pub shed_deadline: u64,
    /// Queries shed because the service was draining, plus any backlog
    /// resolved as shed when the drain deadline expired.
    pub shed_draining: u64,
    /// Breakers currently open (graphs quarantined).
    pub open_breakers: usize,
    /// Breakers currently half-open (awaiting a probe result).
    pub half_open_breakers: usize,
    /// Total breaker trips (Closed→Open and HalfOpen→Open).
    pub breaker_trips: u64,
    /// Total per-graph short-circuits served from open breakers.
    pub quarantined_graph_results: u64,
    /// Queries escalated as wedged by the pool supervisor (a worker stopped
    /// ticking past the deadline grace and was abandoned).
    pub wedged_queries: u64,
    /// Worker threads abandoned and replaced by the pool supervisor.
    pub workers_replaced: u64,
}

impl ServiceHealth {
    /// Total queries shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::database::GraphId;
    use sqp_matching::ResourceKind;

    fn record(filter_ms: u64, verify_ms: u64, cands: usize, answers: usize) -> QueryRecord {
        QueryRecord {
            filter_time: Duration::from_millis(filter_ms),
            verify_time: Duration::from_millis(verify_ms),
            candidates: cands,
            answers,
            ..Default::default()
        }
    }

    fn with_status(status: QueryStatus) -> QueryRecord {
        QueryRecord { status, ..Default::default() }
    }

    #[test]
    fn precision_matches_eq1() {
        let mut r = QuerySetReport::new("CFQL", "Q4S");
        r.records.push(record(1, 1, 4, 2)); // 0.5
        r.records.push(record(1, 1, 2, 2)); // 1.0
        assert!((r.filtering_precision() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_candidate_set_counts_as_perfect() {
        let mut r = QuerySetReport::new("CFQL", "Q4S");
        r.records.push(record(1, 0, 0, 0));
        assert_eq!(r.filtering_precision(), 1.0);
        assert_eq!(r.per_si_test_ms(), 0.0);
    }

    #[test]
    fn per_si_test_matches_eq3() {
        let mut r = QuerySetReport::new("VF2", "Q4S");
        r.records.push(record(0, 10, 5, 1)); // 2 ms per test
        r.records.push(record(0, 12, 3, 0)); // 4 ms per test
        assert!((r.per_si_test_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn averages() {
        let mut r = QuerySetReport::new("X", "Q");
        r.records.push(record(2, 4, 10, 5));
        r.records.push(record(4, 8, 20, 5));
        assert!((r.avg_filter_ms() - 3.0).abs() < 1e-9);
        assert!((r.avg_verify_ms() - 6.0).abs() < 1e-9);
        assert!((r.avg_query_ms() - 9.0).abs() < 1e-9);
        assert!((r.avg_candidates() - 15.0).abs() < 1e-9);
        assert!((r.avg_answers() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_clamping_and_omission() {
        let outcome = QueryOutcome {
            answers: vec![GraphId(0)],
            candidates: 3,
            filter_time: Duration::from_millis(400),
            verify_time: Duration::from_millis(1600),
            status: QueryStatus::TimedOut,
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert!(r.timed_out());
        assert!((r.query_time().as_secs_f64() - 1.0).abs() < 1e-6);
        // Split preserved 1:4.
        assert!((r.filter_time.as_secs_f64() - 0.2).abs() < 1e-6);

        let mut rep = QuerySetReport::new("X", "Q");
        for _ in 0..5 {
            rep.records.push(r.clone());
        }
        assert_eq!(rep.timeout_count(), 5);
        assert!(rep.should_omit());
    }

    #[test]
    fn timeout_under_budget_recorded_at_exactly_budget() {
        // A cancelled parallel query stops early: measured CPU time is
        // *below* the budget. The record must still land exactly on the
        // budget, preserving the 1:3 filter/verify split.
        let outcome = QueryOutcome {
            answers: vec![],
            candidates: 2,
            filter_time: Duration::from_millis(50),
            verify_time: Duration::from_millis(150),
            status: QueryStatus::TimedOut,
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert!((r.query_time().as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((r.filter_time.as_secs_f64() - 0.25).abs() < 1e-6);
        assert!((r.verify_time.as_secs_f64() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn timeout_with_zero_measured_time_charges_budget_to_filter() {
        let outcome = QueryOutcome { status: QueryStatus::TimedOut, ..Default::default() };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(700)));
        assert_eq!(r.filter_time, Duration::from_millis(700));
        assert_eq!(r.verify_time, Duration::ZERO);
        assert_eq!(r.query_time(), Duration::from_millis(700));
    }

    #[test]
    fn untimed_out_records_are_not_rescaled() {
        let outcome = QueryOutcome {
            filter_time: Duration::from_millis(5),
            verify_time: Duration::from_millis(7),
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert_eq!(r.filter_time, Duration::from_millis(5));
        assert_eq!(r.verify_time, Duration::from_millis(7));
    }

    #[test]
    fn panicked_and_exhausted_records_are_not_pinned_to_budget() {
        // Only wall-clock timeouts are recorded at the limit; a panicked or
        // resource-exhausted query keeps its measured (partial) time.
        for status in [
            QueryStatus::Panicked { message: "boom".into() },
            QueryStatus::ResourceExhausted { kind: ResourceKind::Steps },
        ] {
            let outcome = QueryOutcome {
                filter_time: Duration::from_millis(10),
                verify_time: Duration::from_millis(30),
                status: status.clone(),
                ..Default::default()
            };
            let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_secs(600)));
            assert_eq!(r.status, status);
            assert!(!r.timed_out());
            assert_eq!(r.query_time(), Duration::from_millis(40));
        }
    }

    #[test]
    fn status_rollups_are_disjoint() {
        let mut rep = QuerySetReport::new("X", "Q");
        rep.records.push(record(1, 1, 1, 1));
        rep.records.push(with_status(QueryStatus::TimedOut));
        rep.records.push(with_status(QueryStatus::TimedOut));
        rep.records.push(with_status(QueryStatus::Panicked { message: "p".into() }));
        rep.records
            .push(with_status(QueryStatus::ResourceExhausted { kind: ResourceKind::Memory }));
        let mut retried = record(1, 1, 1, 1);
        retried.retries = 2;
        rep.records.push(retried);

        assert_eq!(rep.timeout_count(), 2);
        assert_eq!(rep.panic_count(), 1);
        assert_eq!(rep.exhausted_count(), 1);
        assert_eq!(rep.failure_count(), 4);
        assert_eq!(rep.total_retries(), 2);
        assert!((rep.completion_rate() - 2.0 / 6.0).abs() < 1e-9);
        assert!(rep.should_omit());
    }

    #[test]
    fn shed_and_quarantined_rollups() {
        let mut rep = QuerySetReport::new("X", "Q");
        rep.records.push(record(1, 1, 1, 1));
        rep.records.push(with_status(QueryStatus::Shed));
        rep.records.push(with_status(QueryStatus::Shed));
        rep.records.push(with_status(QueryStatus::Quarantined));
        assert_eq!(rep.shed_count(), 2);
        assert_eq!(rep.quarantined_count(), 1);
        assert_eq!(rep.failure_count(), 3);
        // Shed/quarantined records are never pinned to the budget.
        let shed = QueryRecord::from_outcome(&QueryOutcome::shed(), Some(Duration::from_secs(1)));
        assert_eq!(shed.query_time(), Duration::ZERO);
        assert!(shed.status.is_shed());
    }

    #[test]
    fn service_health_shed_total() {
        let h = ServiceHealth {
            shed_queue_full: 2,
            shed_deadline: 3,
            shed_draining: 4,
            ..Default::default()
        };
        assert_eq!(h.shed_total(), 9);
    }

    #[test]
    fn empty_report_defaults() {
        let r = QuerySetReport::new("X", "Q");
        assert_eq!(r.avg_query_ms(), 0.0);
        assert_eq!(r.completion_rate(), 1.0);
        assert_eq!(r.total_retries(), 0);
        assert!(!r.should_omit());
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::upper_edge(0), 0);
        assert_eq!(LatencyHistogram::upper_edge(1), 1);
        assert_eq!(LatencyHistogram::upper_edge(2), 3);
        assert_eq!(LatencyHistogram::upper_edge(64), u64::MAX);
        // Every value lands in a bucket whose edge bounds it from above.
        for v in [0u64, 1, 7, 8, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(v <= LatencyHistogram::upper_edge(LatencyHistogram::bucket_of(v)));
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::from_samples([1u64, 2, 3, 100, 1000]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // Median sample is 3 → bucket [2,3] → upper edge 3.
        assert_eq!(h.p50(), Some(3));
        // p99 rank = ceil(0.99 * 5) = 5 → the 1000 sample → bucket [512,1023].
        assert_eq!(h.p99(), Some(1023));
        assert!(h.quantile(0.0) == Some(1) || h.quantile(0.0) == Some(0));
    }

    #[test]
    fn empty_histogram_quantiles_are_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let xs = [0u64, 5, 9, 17, 300];
        let ys = [2u64, 5, 1 << 20, u64::MAX];
        let mut a = LatencyHistogram::from_samples(xs);
        let b = LatencyHistogram::from_samples(ys);
        a.merge(&b);
        let both = LatencyHistogram::from_samples(xs.iter().chain(ys.iter()).copied());
        assert_eq!(a, both);
        assert_eq!(a.count(), 9);
    }

    #[test]
    fn censored_records_are_excluded_from_histograms() {
        let mut r = QuerySetReport::new("X", "Q");
        let mut good = record(1, 1, 1, 1);
        good.phases.nanos[Phase::Filter.index()] = 500;
        r.records.push(good);
        let mut timed_out = with_status(QueryStatus::TimedOut);
        timed_out.filter_time = Duration::from_secs(600); // pinned at budget
        timed_out.phases.nanos[Phase::Filter.index()] = 9999;
        r.records.push(timed_out);
        r.records.push(with_status(QueryStatus::Shed));
        r.records.push(with_status(QueryStatus::Unavailable));

        assert_eq!(r.unavailable_count(), 1);
        assert_eq!(r.censored_count(), 3);
        assert_eq!(r.latency_histogram().count(), 1);
        assert_eq!(r.phase_histogram(Phase::Filter).count(), 1);
        assert_eq!(r.phase_totals().nanos_of(Phase::Filter), 500);
        assert_eq!(r.uncensored_wall_nanos(), 2_000_000);
        // Means keep the paper's pin-at-budget convention.
        assert!(r.avg_query_ms() > 1000.0);
    }

    #[test]
    fn phase_totals_merge_across_records() {
        let mut r = QuerySetReport::new("X", "Q");
        for _ in 0..3 {
            let mut rec = QueryRecord::default();
            rec.phases.nanos[Phase::Enumerate.index()] = 10;
            rec.phases.items[Phase::Enumerate.index()] = 2;
            r.records.push(rec);
        }
        let t = r.phase_totals();
        assert_eq!(t.nanos_of(Phase::Enumerate), 30);
        assert_eq!(t.items_of(Phase::Enumerate), 6);
        assert_eq!(t.total_nanos(), 30);
    }
}
