//! Query and query-set metrics (§IV-A of the paper), with the structured
//! failure taxonomy rolled up per query set.

use std::time::Duration;

use sqp_matching::KernelStats;

use crate::engine::{GraphFailure, QueryOutcome, QueryStatus};

/// One query's measurements.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Time in the filtering step.
    pub filter_time: Duration,
    /// Time in the verification step.
    pub verify_time: Duration,
    /// `|C(q)|`.
    pub candidates: usize,
    /// `|A(q)|`.
    pub answers: usize,
    /// How the query ended.
    pub status: QueryStatus,
    /// Per-graph failure attribution (sorted by graph id).
    pub failures: Vec<GraphFailure>,
    /// How many times the runner retried this query after a panic.
    pub retries: u32,
    /// Peak auxiliary-structure bytes.
    pub aux_bytes: usize,
    /// Enumeration-kernel counters (intersections, galloping passes, bitmap
    /// probes) accumulated across the query's matcher calls.
    pub kernel: KernelStats,
}

impl Default for QueryRecord {
    fn default() -> Self {
        Self {
            filter_time: Duration::ZERO,
            verify_time: Duration::ZERO,
            candidates: 0,
            answers: 0,
            status: QueryStatus::Completed,
            failures: Vec::new(),
            retries: 0,
            aux_bytes: 0,
            kernel: KernelStats::default(),
        }
    }
}

impl QueryRecord {
    /// Builds a record from an engine outcome, pinning a timed-out query's
    /// total to exactly `budget` (the paper records timeouts at the
    /// 10-minute limit). Measured totals can land on either side of the
    /// budget — over it when the last matcher call overshoots the deadline,
    /// under it when a parallel worker stops early on cooperative
    /// cancellation — so the times are rescaled in both directions,
    /// preserving the filter/verify split. Only wall-clock timeouts are
    /// pinned; panicked and resource-exhausted queries keep their measured
    /// times (they did not run to the limit).
    pub fn from_outcome(outcome: &QueryOutcome, budget: Option<Duration>) -> Self {
        let mut filter_time = outcome.filter_time;
        let mut verify_time = outcome.verify_time;
        if outcome.status.is_timed_out() {
            if let Some(b) = budget {
                let total = filter_time + verify_time;
                if total.is_zero() {
                    // Nothing measured (timed out before the first phase
                    // tick): attribute the whole budget to filtering.
                    filter_time = b;
                    verify_time = Duration::ZERO;
                } else {
                    let scale = b.as_secs_f64() / total.as_secs_f64();
                    filter_time = filter_time.mul_f64(scale);
                    verify_time = verify_time.mul_f64(scale);
                }
            }
        }
        Self {
            filter_time,
            verify_time,
            candidates: outcome.candidates,
            answers: outcome.answers.len(),
            status: outcome.status.clone(),
            failures: outcome.failures.clone(),
            retries: 0,
            aux_bytes: outcome.aux_bytes,
            kernel: outcome.kernel,
        }
    }

    /// Total query time.
    pub fn query_time(&self) -> Duration {
        self.filter_time + self.verify_time
    }

    /// Whether the wall-clock budget expired (back-compat helper).
    pub fn timed_out(&self) -> bool {
        self.status.is_timed_out()
    }
}

/// Aggregated measurements of one engine on one query set.
#[derive(Clone, Debug, Default)]
pub struct QuerySetReport {
    /// Engine name (e.g. `"CFQL"`).
    pub engine: String,
    /// Query-set name (e.g. `"Q8S"`).
    pub query_set: String,
    /// Per-query records, in query order.
    pub records: Vec<QueryRecord>,
}

impl QuerySetReport {
    /// Creates an empty report.
    pub fn new(engine: impl Into<String>, query_set: impl Into<String>) -> Self {
        Self { engine: engine.into(), query_set: query_set.into(), records: Vec::new() }
    }

    fn mean(&self, f: impl Fn(&QueryRecord) -> f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(f).sum::<f64>() / self.records.len() as f64
    }

    /// Average query time in milliseconds.
    pub fn avg_query_ms(&self) -> f64 {
        self.mean(|r| r.query_time().as_secs_f64() * 1e3)
    }

    /// Average filtering time in milliseconds.
    pub fn avg_filter_ms(&self) -> f64 {
        self.mean(|r| r.filter_time.as_secs_f64() * 1e3)
    }

    /// Average verification time in milliseconds.
    pub fn avg_verify_ms(&self) -> f64 {
        self.mean(|r| r.verify_time.as_secs_f64() * 1e3)
    }

    /// Filtering precision (Eq. 1): mean over queries of `|A(q)| / |C(q)|`.
    /// Queries with an empty candidate set count as precision 1 (the filter
    /// was perfect: nothing to verify, nothing missed).
    pub fn filtering_precision(&self) -> f64 {
        self.mean(|r| if r.candidates == 0 { 1.0 } else { r.answers as f64 / r.candidates as f64 })
    }

    /// Average `|C(q)|` (Figure 6).
    pub fn avg_candidates(&self) -> f64 {
        self.mean(|r| r.candidates as f64)
    }

    /// Average `|A(q)|`.
    pub fn avg_answers(&self) -> f64 {
        self.mean(|r| r.answers as f64)
    }

    /// Per-SI-test time in milliseconds (Eq. 3): mean over queries of
    /// `verification time / |C(q)|`; queries with no candidates contribute 0.
    pub fn per_si_test_ms(&self) -> f64 {
        self.mean(|r| {
            if r.candidates == 0 {
                0.0
            } else {
                r.verify_time.as_secs_f64() * 1e3 / r.candidates as f64
            }
        })
    }

    /// Number of queries that exceeded the wall-clock budget (only; panics
    /// and resource exhaustion are counted separately).
    pub fn timeout_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_timed_out()).count()
    }

    /// Number of queries that panicked (after exhausting any retries).
    pub fn panic_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_panicked()).count()
    }

    /// Number of queries that tripped a resource budget.
    pub fn exhausted_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_exhausted()).count()
    }

    /// Number of queries rejected by admission control (never executed).
    pub fn shed_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_shed()).count()
    }

    /// Number of queries whose most severe failure was an open-breaker
    /// short-circuit (some graphs quarantined, everything else clean).
    pub fn quarantined_count(&self) -> usize {
        self.records.iter().filter(|r| r.status.is_quarantined()).count()
    }

    /// Number of queries that ended in any non-completed state.
    pub fn failure_count(&self) -> usize {
        self.records.iter().filter(|r| !r.status.is_completed()).count()
    }

    /// Total retry attempts spent across the set.
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// Fraction of queries that completed (any failure mode counts against
    /// completion).
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        1.0 - self.failure_count() as f64 / self.records.len() as f64
    }

    /// Peak auxiliary bytes across the set.
    pub fn max_aux_bytes(&self) -> usize {
        self.records.iter().map(|r| r.aux_bytes).max().unwrap_or(0)
    }

    /// Enumeration-kernel counters summed across the set.
    pub fn kernel_totals(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for r in &self.records {
            total.merge(&r.kernel);
        }
        total
    }

    /// The paper omits an algorithm's results on a query set when it fails
    /// more than 40% of the queries; this implements that cutoff.
    pub fn should_omit(&self) -> bool {
        self.completion_rate() < 0.6
    }
}

/// A point-in-time snapshot of a `QueryService`'s serving state: queue and
/// breaker occupancy plus monotonic degradation counters. Produced by
/// `QueryService::health`; all counters are totals since service start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Queries admitted but not yet started.
    pub queue_depth: usize,
    /// Queries currently executing (0 or 1 — the pool serializes queries).
    pub inflight: usize,
    /// Whether the service has stopped admitting (drain in progress).
    pub draining: bool,
    /// Queries admitted since start.
    pub admitted: u64,
    /// Admitted queries that reached a terminal status through execution.
    pub finished: u64,
    /// Queries shed because the submission queue was full.
    pub shed_queue_full: u64,
    /// Queries shed because the predicted wait + service time exceeded the
    /// query budget.
    pub shed_deadline: u64,
    /// Queries shed because the service was draining, plus any backlog
    /// resolved as shed when the drain deadline expired.
    pub shed_draining: u64,
    /// Breakers currently open (graphs quarantined).
    pub open_breakers: usize,
    /// Breakers currently half-open (awaiting a probe result).
    pub half_open_breakers: usize,
    /// Total breaker trips (Closed→Open and HalfOpen→Open).
    pub breaker_trips: u64,
    /// Total per-graph short-circuits served from open breakers.
    pub quarantined_graph_results: u64,
}

impl ServiceHealth {
    /// Total queries shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_draining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::database::GraphId;
    use sqp_matching::ResourceKind;

    fn record(filter_ms: u64, verify_ms: u64, cands: usize, answers: usize) -> QueryRecord {
        QueryRecord {
            filter_time: Duration::from_millis(filter_ms),
            verify_time: Duration::from_millis(verify_ms),
            candidates: cands,
            answers,
            ..Default::default()
        }
    }

    fn with_status(status: QueryStatus) -> QueryRecord {
        QueryRecord { status, ..Default::default() }
    }

    #[test]
    fn precision_matches_eq1() {
        let mut r = QuerySetReport::new("CFQL", "Q4S");
        r.records.push(record(1, 1, 4, 2)); // 0.5
        r.records.push(record(1, 1, 2, 2)); // 1.0
        assert!((r.filtering_precision() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_candidate_set_counts_as_perfect() {
        let mut r = QuerySetReport::new("CFQL", "Q4S");
        r.records.push(record(1, 0, 0, 0));
        assert_eq!(r.filtering_precision(), 1.0);
        assert_eq!(r.per_si_test_ms(), 0.0);
    }

    #[test]
    fn per_si_test_matches_eq3() {
        let mut r = QuerySetReport::new("VF2", "Q4S");
        r.records.push(record(0, 10, 5, 1)); // 2 ms per test
        r.records.push(record(0, 12, 3, 0)); // 4 ms per test
        assert!((r.per_si_test_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn averages() {
        let mut r = QuerySetReport::new("X", "Q");
        r.records.push(record(2, 4, 10, 5));
        r.records.push(record(4, 8, 20, 5));
        assert!((r.avg_filter_ms() - 3.0).abs() < 1e-9);
        assert!((r.avg_verify_ms() - 6.0).abs() < 1e-9);
        assert!((r.avg_query_ms() - 9.0).abs() < 1e-9);
        assert!((r.avg_candidates() - 15.0).abs() < 1e-9);
        assert!((r.avg_answers() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_clamping_and_omission() {
        let outcome = QueryOutcome {
            answers: vec![GraphId(0)],
            candidates: 3,
            filter_time: Duration::from_millis(400),
            verify_time: Duration::from_millis(1600),
            status: QueryStatus::TimedOut,
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert!(r.timed_out());
        assert!((r.query_time().as_secs_f64() - 1.0).abs() < 1e-6);
        // Split preserved 1:4.
        assert!((r.filter_time.as_secs_f64() - 0.2).abs() < 1e-6);

        let mut rep = QuerySetReport::new("X", "Q");
        for _ in 0..5 {
            rep.records.push(r.clone());
        }
        assert_eq!(rep.timeout_count(), 5);
        assert!(rep.should_omit());
    }

    #[test]
    fn timeout_under_budget_recorded_at_exactly_budget() {
        // A cancelled parallel query stops early: measured CPU time is
        // *below* the budget. The record must still land exactly on the
        // budget, preserving the 1:3 filter/verify split.
        let outcome = QueryOutcome {
            answers: vec![],
            candidates: 2,
            filter_time: Duration::from_millis(50),
            verify_time: Duration::from_millis(150),
            status: QueryStatus::TimedOut,
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert!((r.query_time().as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((r.filter_time.as_secs_f64() - 0.25).abs() < 1e-6);
        assert!((r.verify_time.as_secs_f64() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn timeout_with_zero_measured_time_charges_budget_to_filter() {
        let outcome = QueryOutcome { status: QueryStatus::TimedOut, ..Default::default() };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(700)));
        assert_eq!(r.filter_time, Duration::from_millis(700));
        assert_eq!(r.verify_time, Duration::ZERO);
        assert_eq!(r.query_time(), Duration::from_millis(700));
    }

    #[test]
    fn untimed_out_records_are_not_rescaled() {
        let outcome = QueryOutcome {
            filter_time: Duration::from_millis(5),
            verify_time: Duration::from_millis(7),
            ..Default::default()
        };
        let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_millis(1000)));
        assert_eq!(r.filter_time, Duration::from_millis(5));
        assert_eq!(r.verify_time, Duration::from_millis(7));
    }

    #[test]
    fn panicked_and_exhausted_records_are_not_pinned_to_budget() {
        // Only wall-clock timeouts are recorded at the limit; a panicked or
        // resource-exhausted query keeps its measured (partial) time.
        for status in [
            QueryStatus::Panicked { message: "boom".into() },
            QueryStatus::ResourceExhausted { kind: ResourceKind::Steps },
        ] {
            let outcome = QueryOutcome {
                filter_time: Duration::from_millis(10),
                verify_time: Duration::from_millis(30),
                status: status.clone(),
                ..Default::default()
            };
            let r = QueryRecord::from_outcome(&outcome, Some(Duration::from_secs(600)));
            assert_eq!(r.status, status);
            assert!(!r.timed_out());
            assert_eq!(r.query_time(), Duration::from_millis(40));
        }
    }

    #[test]
    fn status_rollups_are_disjoint() {
        let mut rep = QuerySetReport::new("X", "Q");
        rep.records.push(record(1, 1, 1, 1));
        rep.records.push(with_status(QueryStatus::TimedOut));
        rep.records.push(with_status(QueryStatus::TimedOut));
        rep.records.push(with_status(QueryStatus::Panicked { message: "p".into() }));
        rep.records
            .push(with_status(QueryStatus::ResourceExhausted { kind: ResourceKind::Memory }));
        let mut retried = record(1, 1, 1, 1);
        retried.retries = 2;
        rep.records.push(retried);

        assert_eq!(rep.timeout_count(), 2);
        assert_eq!(rep.panic_count(), 1);
        assert_eq!(rep.exhausted_count(), 1);
        assert_eq!(rep.failure_count(), 4);
        assert_eq!(rep.total_retries(), 2);
        assert!((rep.completion_rate() - 2.0 / 6.0).abs() < 1e-9);
        assert!(rep.should_omit());
    }

    #[test]
    fn shed_and_quarantined_rollups() {
        let mut rep = QuerySetReport::new("X", "Q");
        rep.records.push(record(1, 1, 1, 1));
        rep.records.push(with_status(QueryStatus::Shed));
        rep.records.push(with_status(QueryStatus::Shed));
        rep.records.push(with_status(QueryStatus::Quarantined));
        assert_eq!(rep.shed_count(), 2);
        assert_eq!(rep.quarantined_count(), 1);
        assert_eq!(rep.failure_count(), 3);
        // Shed/quarantined records are never pinned to the budget.
        let shed = QueryRecord::from_outcome(&QueryOutcome::shed(), Some(Duration::from_secs(1)));
        assert_eq!(shed.query_time(), Duration::ZERO);
        assert!(shed.status.is_shed());
    }

    #[test]
    fn service_health_shed_total() {
        let h = ServiceHealth {
            shed_queue_full: 2,
            shed_deadline: 3,
            shed_draining: 4,
            ..Default::default()
        };
        assert_eq!(h.shed_total(), 9);
    }

    #[test]
    fn empty_report_defaults() {
        let r = QuerySetReport::new("X", "Q");
        assert_eq!(r.avg_query_ms(), 0.0);
        assert_eq!(r.completion_rate(), 1.0);
        assert_eq!(r.total_retries(), 0);
        assert!(!r.should_omit());
    }
}
