//! Shard-side of the sharded query service: hash placement of the
//! database over shard workers, and the TCP worker serving one shard.
//!
//! Placement is **deterministic and data-derived**: graph `g` lives on
//! shard `graph_fingerprint(g) % shards` ([`shard_of`]). Every process
//! that can see the full database — the coordinator for attribution, each
//! shard worker for its own slice — computes the identical
//! [`ShardPlacement`] independently; nothing about placement travels over
//! the wire, so a corrupted peer cannot shift graphs between shards.
//!
//! A [`ShardServer`] wraps its shard-local slice in an ordinary
//! [`QueryService`] (same admission control, per-graph breakers,
//! budget-charged retries as the single-process service) and speaks the
//! [`crate::wire`] protocol: for each [`Message::Query`] it runs the query
//! against its slice, translates local graph ids back to **global**
//! database ids, and streams [`Message::Answers`] chunks followed by one
//! [`Message::Outcome`]. Deadline propagation is honoured by forwarding
//! the frame's remaining `budget_ms` as a per-query budget override.

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb};
use sqp_matching::Matcher;

use crate::chaos::graph_fingerprint;
use crate::engine::GraphFailure;
use crate::exposition;
use crate::journal::db_fingerprint;
use crate::metrics::{QueryRecord, QuerySetReport};
use crate::parallel::lock;
use crate::service::{QueryService, ServiceConfig};
use crate::wire::{
    read_frame, write_frame, Message, PeerRole, WireChaos, WireConfig, WireError, WireOutcome,
    ANSWER_CHUNK, WIRE_VERSION,
};

/// The shard a graph lives on under fingerprint-hash placement.
pub fn shard_of(g: &Graph, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (graph_fingerprint(g) % shards.max(1) as u64) as usize
}

/// Deterministic assignment of every global graph id to a shard, plus the
/// local→global translation tables each shard needs to reply in global
/// ids (and the coordinator needs to attribute a dead shard's graphs).
#[derive(Clone, Debug)]
pub struct ShardPlacement {
    shards: usize,
    /// Per shard: the global ids it holds, ascending (local id `i` on
    /// shard `s` is `globals[s][i]`).
    globals: Vec<Vec<GraphId>>,
}

impl ShardPlacement {
    /// Places every graph of `db` on its fingerprint-hash shard.
    pub fn new(db: &GraphDb, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut globals = vec![Vec::new(); shards];
        for (id, g) in db.iter() {
            globals[shard_of(g, shards)].push(id);
        }
        Self { shards, globals }
    }

    /// Number of shards placed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Global ids held by shard `index`, ascending.
    pub fn globals(&self, index: usize) -> &[GraphId] {
        &self.globals[index]
    }

    /// Builds the shard-local database slice for shard `index` (graphs in
    /// global-id order, so local ids are the ascending rank of the
    /// shard's globals).
    pub fn shard_db(&self, db: &GraphDb, index: usize) -> GraphDb {
        let mine = &self.globals[index];
        db.retain(|id, _| mine.binary_search(&id).is_ok())
    }

    /// Translates a shard-local id to its global database id.
    pub fn to_global(&self, index: usize, local: GraphId) -> GraphId {
        self.globals[index][local.index()]
    }
}

/// Configuration of a [`ShardServer`].
#[derive(Clone, Debug)]
pub struct ShardServerConfig {
    /// Address to listen on (use port 0 to let the OS pick).
    pub addr: String,
    /// This worker's shard index.
    pub shard_index: usize,
    /// Total shard count placement is computed for.
    pub shards: usize,
    /// The local query service's configuration (threads, budget, breakers).
    pub service: ServiceConfig,
    /// Frame cap etc. for the wire protocol.
    pub wire: WireConfig,
    /// When set, outbound frames pass through the deterministic chaos
    /// plan (drop / truncate / corrupt / delay) — the loopback fault
    /// suite's "corrupting shard".
    pub chaos: Option<WireChaos>,
}

impl Default for ShardServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shard_index: 0,
            shards: 1,
            service: ServiceConfig::default(),
            wire: WireConfig::default(),
            chaos: None,
        }
    }
}

struct ShardShared {
    service: QueryService,
    globals: Vec<GraphId>,
    db_fp: u64,
    shard_index: usize,
    shards: usize,
    wire: WireConfig,
    chaos: Option<WireChaos>,
    stopping: AtomicBool,
    /// Live connection handles, for abrupt kill / orderly stop.
    conns: Mutex<Vec<TcpStream>>,
    /// Report of everything served, for the metrics exposition.
    report: Mutex<QuerySetReport>,
}

impl ShardShared {
    /// Sends one frame, applying the chaos plan if configured. A dropped
    /// frame reports success (the fault is the silence); a mangled frame is
    /// written verbatim.
    fn send(&self, stream: &mut TcpStream, msg: &Message) -> Result<(), WireError> {
        match &self.chaos {
            None => write_frame(stream, msg),
            Some(chaos) => {
                let frame = crate::wire::encode_frame(msg);
                match chaos.mangle(frame) {
                    None => Ok(()),
                    Some(bytes) => {
                        stream.write_all(&bytes)?;
                        Ok(())
                    }
                }
            }
        }
    }

    fn serve_conn(&self, mut stream: TcpStream) {
        // Handshake: refuse version or database mismatches up front.
        let hello = match read_frame(&mut stream, &self.wire) {
            Ok(Message::Hello {
                version,
                role: PeerRole::Coordinator,
                db_fp,
                shards,
                shard_index,
            }) => {
                if version != WIRE_VERSION {
                    let _ = self.send(
                        &mut stream,
                        &Message::Error {
                            message: format!(
                                "wire version mismatch: peer {version}, this {WIRE_VERSION}"
                            ),
                        },
                    );
                    return;
                }
                if db_fp != self.db_fp {
                    let _ = self.send(
                        &mut stream,
                        &Message::Error {
                            message: format!(
                                "database fingerprint mismatch: peer {db_fp:016x}, shard {:016x}",
                                self.db_fp
                            ),
                        },
                    );
                    return;
                }
                if shards as usize != self.shards || shard_index as usize != self.shard_index {
                    let _ = self.send(
                        &mut stream,
                        &Message::Error {
                            message: format!(
                                "placement mismatch: peer expects shard {shard_index}/{shards}, \
                             this is {}/{}",
                                self.shard_index, self.shards
                            ),
                        },
                    );
                    return;
                }
                true
            }
            Ok(_) => {
                let _ = self
                    .send(&mut stream, &Message::Error { message: "expected Hello".to_string() });
                false
            }
            Err(_) => false,
        };
        if !hello {
            return;
        }
        if self
            .send(
                &mut stream,
                &Message::HelloAck {
                    version: WIRE_VERSION,
                    db_fp: self.db_fp,
                    graphs: self.globals.len() as u32,
                },
            )
            .is_err()
        {
            return;
        }

        loop {
            if self.stopping.load(Ordering::Acquire) {
                return;
            }
            let msg = match read_frame(&mut stream, &self.wire) {
                Ok(msg) => msg,
                // Closed, corrupt, or truncated inbound frame: the protocol
                // is lockstep per query, so there is no safe resync point —
                // drop the connection and let the coordinator retry.
                Err(_) => return,
            };
            match msg {
                Message::Query { id, budget_ms, graph } => {
                    if self.answer_query(&mut stream, id, budget_ms, &graph).is_err() {
                        return;
                    }
                }
                Message::MetricsRequest => {
                    let text = self.metrics_text();
                    if self.send(&mut stream, &Message::MetricsText { text }).is_err() {
                        return;
                    }
                }
                Message::Bye => return,
                _ => {
                    let _ = self.send(
                        &mut stream,
                        &Message::Error { message: "unexpected message".to_string() },
                    );
                    return;
                }
            }
        }
    }

    fn answer_query(
        &self,
        stream: &mut TcpStream,
        id: u64,
        budget_ms: u64,
        q: &Graph,
    ) -> Result<(), WireError> {
        let budget = (budget_ms > 0).then(|| Duration::from_millis(budget_ms));
        let (ticket, _) = self.service.submit_with_budget(q, budget);
        let (outcome, retries) = ticket.wait();
        // Translate local ids to global before anything crosses the wire.
        let answers: Vec<GraphId> =
            outcome.answers.iter().map(|g| self.globals[g.index()]).collect();
        let mut wire_outcome = WireOutcome::from_outcome(&outcome, retries);
        for f in &mut wire_outcome.failures {
            *f = GraphFailure { graph: self.globals[f.graph.index()], status: f.status.clone() };
        }
        {
            let mut record = QueryRecord::from_outcome(&outcome, budget);
            record.retries = retries;
            lock(&self.report).records.push(record);
        }
        for chunk in answers.chunks(ANSWER_CHUNK) {
            self.send(stream, &Message::Answers { id, graphs: chunk.to_vec() })?;
        }
        self.send(stream, &Message::Outcome { id, outcome: wire_outcome })
    }

    fn metrics_text(&self) -> String {
        let report = lock(&self.report).clone();
        let health = self.service.health();
        exposition::render(&[report], Some(&health))
    }
}

/// A TCP worker serving one shard of the database. See the module docs.
pub struct ShardServer {
    shared: Arc<ShardShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardServer {
    /// Computes this shard's slice of `db`, starts its query service, and
    /// begins accepting connections. `db` is the **full** database; the
    /// slice is derived locally from the placement.
    pub fn start(
        matcher: Arc<dyn Matcher>,
        db: &GraphDb,
        config: ShardServerConfig,
    ) -> std::io::Result<Self> {
        let ShardServerConfig { addr, shard_index, shards, service, wire, chaos } = config;
        let placement = ShardPlacement::new(db, shards);
        let local = Arc::new(placement.shard_db(db, shard_index));
        let globals = placement.globals(shard_index).to_vec();
        let db_fp = db_fingerprint(db);
        let service = QueryService::new(matcher, local, service);
        let listener = TcpListener::bind(&addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ShardShared {
            service,
            globals,
            db_fp,
            shard_index,
            shards,
            wire,
            chaos,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            report: Mutex::new(QuerySetReport::new("shard", format!("shard-{shard_index}"))),
        });
        let workers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new().name(format!("sqp-shard-{shard_index}-accept")).spawn(
                move || {
                    for conn in listener.incoming() {
                        if shared.stopping.load(Ordering::Acquire) {
                            return;
                        }
                        let Ok(stream) = conn else { return };
                        if let Ok(clone) = stream.try_clone() {
                            lock(&shared.conns).push(clone);
                        }
                        let shared = Arc::clone(&shared);
                        let handle = std::thread::Builder::new()
                            .name(format!("sqp-shard-{}-conn", shared.shard_index))
                            .spawn(move || shared.serve_conn(stream));
                        if let Ok(handle) = handle {
                            lock(&workers).push(handle);
                        }
                    }
                },
            )?
        };
        Ok(Self { shared, addr, accept: Some(accept), workers })
    }

    /// The address the shard is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graphs in this shard's slice.
    pub fn graphs(&self) -> usize {
        self.shared.globals.len()
    }

    /// This shard's serving health (the inner query service's snapshot).
    pub fn health(&self) -> crate::metrics::ServiceHealth {
        self.shared.service.health()
    }

    /// Abruptly severs every live connection and stops accepting, without
    /// draining the service — the in-process stand-in for SIGKILL used by
    /// the chaos suite. The server object stays alive (call
    /// [`shutdown`](ShardServer::shutdown) to reclaim threads).
    pub fn kill_connections(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        for conn in lock(&self.shared.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    fn stop_accepting(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // No new connections can arrive now; sever the remaining ones so
        // connection threads drop out of blocking reads.
        for conn in lock(&self.shared.conns).drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Stops accepting, joins every connection thread, and drains the
    /// inner query service.
    pub fn shutdown(mut self) -> crate::dispatch::DrainReport {
        self.stop_accepting();
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.service.shutdown(),
            Err(_) => crate::dispatch::DrainReport::default(),
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn mixed_db(n: u32) -> GraphDb {
        let graphs =
            (0..n).map(|i| labeled(&[0, 1 + i % 3, 2], &[(0, 1), (1, 2)])).collect::<Vec<_>>();
        GraphDb::from_graphs(graphs)
    }

    #[test]
    fn placement_partitions_the_database() {
        let db = mixed_db(32);
        for shards in [1usize, 2, 3, 4, 8] {
            let p = ShardPlacement::new(&db, shards);
            let mut seen: Vec<GraphId> = Vec::new();
            for s in 0..shards {
                let globals = p.globals(s);
                assert!(globals.windows(2).all(|w| w[0] < w[1]), "globals must ascend");
                seen.extend_from_slice(globals);
                let slice = p.shard_db(&db, s);
                assert_eq!(slice.len(), globals.len());
                for (local, &global) in globals.iter().enumerate() {
                    assert_eq!(
                        slice.graph(GraphId(local as u32)).vertex_count(),
                        db.graph(global).vertex_count()
                    );
                    assert_eq!(p.to_global(s, GraphId(local as u32)), global);
                }
            }
            seen.sort();
            let all: Vec<GraphId> = db.iter().map(|(id, _)| id).collect();
            assert_eq!(seen, all, "every graph placed exactly once at {shards} shards");
        }
    }

    #[test]
    fn placement_is_stable_across_calls() {
        let db = mixed_db(16);
        let a = ShardPlacement::new(&db, 4);
        let b = ShardPlacement::new(&db, 4);
        for s in 0..4 {
            assert_eq!(a.globals(s), b.globals(s));
        }
    }
}
