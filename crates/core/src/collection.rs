//! Subgraph *matching* over a graph collection — the hybrid approach of
//! Katsarou et al. (IEEE Big Data 2017), discussed in the paper's related
//! work (§II-B1, "Other Approaches").
//!
//! Where a subgraph *query* only decides containment per data graph, this
//! service enumerates **all embeddings** of the query across the database,
//! using an optional index to skip non-candidate graphs first — exactly the
//! "indexing-filtering + subgraph matching" combination the paper contrasts
//! with its vcFV framework.

use std::sync::Arc;
use std::time::Duration;

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb};
use sqp_index::GraphIndex;
use sqp_matching::{Deadline, Embedding, FilterResult, Matcher};

/// All embeddings found in one data graph.
#[derive(Clone, Debug)]
pub struct GraphMatches {
    /// The data graph.
    pub graph: GraphId,
    /// Embeddings of the query in that graph (possibly truncated at the
    /// per-graph limit).
    pub embeddings: Vec<Embedding>,
    /// Whether enumeration stopped at the limit or deadline.
    pub truncated: bool,
}

/// Collection-level subgraph matching: optional index filter + full
/// enumeration with a preprocessing-enumeration matcher.
pub struct CollectionMatcher {
    db: Arc<GraphDb>,
    index: Option<Box<dyn GraphIndex>>,
    matcher: Box<dyn Matcher>,
    per_graph_limit: u64,
    query_budget: Option<Duration>,
}

impl CollectionMatcher {
    /// A matcher over `db` with no index (scans every graph).
    pub fn new(db: Arc<GraphDb>, matcher: Box<dyn Matcher>) -> Self {
        Self { db, index: None, matcher, per_graph_limit: u64::MAX, query_budget: None }
    }

    /// Adds an index used to skip non-candidate graphs (the hybrid of reference \[16\] in the paper).
    pub fn with_index(mut self, index: Box<dyn GraphIndex>) -> Self {
        self.index = Some(index);
        self
    }

    /// Caps the number of embeddings collected per data graph.
    pub fn with_per_graph_limit(mut self, limit: u64) -> Self {
        self.per_graph_limit = limit.max(1);
        self
    }

    /// Sets the whole-operation time budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.query_budget = Some(budget);
        self
    }

    /// Enumerates all embeddings of `q` across the collection, in graph-id
    /// order, skipping graphs with none.
    pub fn match_all(&self, q: &Graph) -> Vec<GraphMatches> {
        let deadline = self.query_budget.map_or(Deadline::none(), Deadline::after);
        let candidates: Vec<GraphId> = match &self.index {
            Some(index) => index.candidates(q).into_ids(self.db.len()),
            None => (0..self.db.len() as u32).map(GraphId).collect(),
        };
        let mut out = Vec::new();
        for gid in candidates {
            let g = self.db.graph(gid);
            let space = match self.matcher.filter(q, g, deadline) {
                Ok(FilterResult::Space(s)) => s,
                Ok(FilterResult::Pruned) => continue,
                Err(_) => break,
            };
            let mut embeddings = Vec::new();
            let result =
                self.matcher.enumerate(q, g, &space, self.per_graph_limit, deadline, &mut |e| {
                    embeddings.push(e.clone())
                });
            let truncated = match result {
                Ok(found) => found >= self.per_graph_limit,
                Err(_) => true,
            };
            if !embeddings.is_empty() {
                out.push(GraphMatches { graph: gid, embeddings, truncated });
            }
            if result.is_err() {
                break;
            }
        }
        out
    }

    /// Total embedding count across the collection (respecting limits).
    pub fn count_all(&self, q: &Graph) -> u64 {
        self.match_all(q).iter().map(|m| m.embeddings.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};
    use sqp_index::PathTrieIndex;
    use sqp_matching::cfql::Cfql;

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn db() -> Arc<GraphDb> {
        Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1, 1], &[(0, 1), (0, 2)]), // 2 embeddings of 0-1
            labeled(&[0, 1], &[(0, 1)]),            // 1 embedding
            labeled(&[2, 2], &[(0, 1)]),            // none
        ]))
    }

    #[test]
    fn match_all_enumerates_per_graph() {
        let db = db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let cm = CollectionMatcher::new(Arc::clone(&db), Box::new(Cfql::new()));
        let results = cm.match_all(&q);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].graph, GraphId(0));
        assert_eq!(results[0].embeddings.len(), 2);
        assert_eq!(results[1].embeddings.len(), 1);
        assert_eq!(cm.count_all(&q), 3);
        for m in &results {
            for e in &m.embeddings {
                assert!(e.is_valid(&q, db.graph(m.graph)));
            }
        }
    }

    #[test]
    fn index_accelerated_matches_unindexed() {
        let db = db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let plain = CollectionMatcher::new(Arc::clone(&db), Box::new(Cfql::new()));
        let index = PathTrieIndex::build_default(&db);
        let hybrid = CollectionMatcher::new(Arc::clone(&db), Box::new(Cfql::new()))
            .with_index(Box::new(index));
        assert_eq!(plain.count_all(&q), hybrid.count_all(&q));
    }

    #[test]
    fn per_graph_limit_truncates() {
        let db = db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let cm = CollectionMatcher::new(db, Box::new(Cfql::new())).with_per_graph_limit(1);
        let results = cm.match_all(&q);
        assert_eq!(results[0].embeddings.len(), 1);
        assert!(results[0].truncated);
    }

    #[test]
    fn zero_budget_stops_cleanly() {
        let db = db();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let cm =
            CollectionMatcher::new(db, Box::new(Cfql::new())).with_budget(Duration::from_nanos(0));
        // Must terminate without panicking; results may be empty.
        let _ = cm.match_all(&q);
    }
}
