//! The eight competing engines (plus an Ullmann-based baseline).
//!
//! Concrete, ready-to-run instantiations of the paper's Table III. Every
//! engine is a thin wrapper over one of three generic frames:
//! [`IfvFrame`] (Algorithm 1), [`VcfvFrame`] (Algorithm 2) and
//! [`IvcfvFrame`] (two-level filtering).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb};
use sqp_index::{
    BuildBudget, BuildError, CtIndexConfig, FingerprintIndex, GgsxIndex, GrapesConfig,
    GraphGrepConfig, GraphGrepIndex, GraphIndex, PathTrieIndex,
};
use sqp_matching::cfl::Cfl;
use sqp_matching::cfql::Cfql;
use sqp_matching::graphql::GraphQl;
use sqp_matching::obs::{Phase, Span};
use sqp_matching::quicksi::QuickSi;
use sqp_matching::spath::SPath;
use sqp_matching::turboiso::TurboIso;
use sqp_matching::ullmann::Ullmann;
use sqp_matching::{Deadline, Matcher, MatcherConfig, ResourceGuard, ResourceLimits, StatsSink};

use crate::engine::{BuildReport, EngineCategory, QueryEngine, QueryOutcome};
use crate::parallel::{panic_message, process_graph};
use crate::verifier::Vf2Verifier;

/// Which index structure an IFV/IvcFV engine builds.
#[derive(Clone, Copy, Debug)]
pub enum IndexKind {
    /// Grapes path trie.
    Grapes(GrapesConfig),
    /// GGSX sorted path dictionary.
    Ggsx {
        /// Maximum vertices per path feature.
        max_path_vertices: usize,
    },
    /// CT-Index fingerprints.
    CtIndex(CtIndexConfig),
    /// GraphGrep hashed path fingerprints.
    GraphGrep(GraphGrepConfig),
}

impl IndexKind {
    fn build(self, db: &GraphDb, budget: &BuildBudget) -> Result<Box<dyn GraphIndex>, BuildError> {
        Ok(match self {
            IndexKind::Grapes(cfg) => Box::new(PathTrieIndex::build(db, cfg, budget)?),
            IndexKind::Ggsx { max_path_vertices } => {
                Box::new(GgsxIndex::build(db, max_path_vertices, budget)?)
            }
            IndexKind::CtIndex(cfg) => Box::new(FingerprintIndex::build(db, cfg, budget)?),
            IndexKind::GraphGrep(cfg) => Box::new(GraphGrepIndex::build(db, cfg, budget)?),
        })
    }
}

// ---------------------------------------------------------------------------
// IFV frame (Algorithm 1)
// ---------------------------------------------------------------------------

/// Generic IFV engine: index-based filtering + VF2 verification.
pub struct IfvFrame {
    name: &'static str,
    kind: IndexKind,
    verifier: Vf2Verifier,
    build_budget: BuildBudget,
    query_budget: Option<Duration>,
    limits: ResourceLimits,
    guard: ResourceGuard,
    stats: StatsSink,
    db: Option<Arc<GraphDb>>,
    index: Option<Box<dyn GraphIndex>>,
}

impl IfvFrame {
    /// Creates an unbuilt IFV engine.
    pub fn new(name: &'static str, kind: IndexKind, verifier: Vf2Verifier) -> Self {
        Self {
            name,
            kind,
            verifier,
            build_budget: BuildBudget::unlimited(),
            query_budget: None,
            limits: ResourceLimits::unlimited(),
            guard: ResourceGuard::new(),
            stats: StatsSink::new(),
            db: None,
            index: None,
        }
    }

    /// Sets the index-construction budget (the paper's 24 h / RAM limits).
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.build_budget = budget;
    }

    /// Re-arms the engine's resource guard and phase-span sink, and builds
    /// the per-query deadline.
    fn deadline(&self) -> Deadline {
        self.guard.reset(self.limits);
        self.stats.reset();
        self.query_budget
            .map_or(Deadline::none(), Deadline::after)
            .with_guard(self.guard)
            .with_stats(self.stats)
    }

    fn build_impl(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
        let t0 = Instant::now();
        let index = self.kind.build(db, &self.build_budget)?;
        let build_time = t0.elapsed();
        let index_bytes = index.heap_bytes();
        self.db = Some(Arc::clone(db));
        self.index = Some(index);
        Ok(BuildReport { build_time, index_bytes })
    }

    fn query_impl(&self, q: &Graph) -> QueryOutcome {
        let (db, index) = match (&self.db, &self.index) {
            (Some(db), Some(index)) => (db, index),
            // Documented precondition (QueryEngine::query): build first.
            _ => panic!("query before build"),
        };
        let deadline = self.deadline();

        let t0 = Instant::now();
        let candidates = {
            let mut span = Span::enter(Phase::Filter, deadline);
            let candidates = index.candidates(q).into_ids(db.len());
            span.add_items(candidates.len() as u64);
            candidates
        };
        let filter_time = t0.elapsed();

        let mut out =
            QueryOutcome { candidates: candidates.len(), filter_time, ..Default::default() };
        let t1 = Instant::now();
        // Outer stage span: absorbs the panic-guard and dispatch overhead of
        // the SI-test loop into the verify phase (the per-call spans inside
        // `verify` subtract themselves via self-time accounting).
        let stage_span = Span::enter(Phase::Verify, deadline);
        for gid in candidates {
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.verifier.verify(q, db.graph(gid), deadline)
            }));
            match verdict {
                Err(payload) => out.record_panic(gid, panic_message(payload)),
                Ok(Ok(true)) => out.answers.push(gid),
                Ok(Ok(false)) => {}
                Ok(Err(_)) => {
                    out.record_interrupt(gid, deadline);
                    break;
                }
            }
        }
        drop(stage_span);
        out.verify_time = t1.elapsed();
        out.finalize();
        out.kernel = self.stats.snapshot();
        out.phases = self.stats.phase_snapshot();
        out
    }
}

// ---------------------------------------------------------------------------
// vcFV frame (Algorithm 2)
// ---------------------------------------------------------------------------

/// Generic vcFV engine: per-graph matcher preprocessing as the filter,
/// first-match enumeration as the verifier. Index-free.
pub struct VcfvFrame {
    name: &'static str,
    matcher: Box<dyn Matcher>,
    query_budget: Option<Duration>,
    limits: ResourceLimits,
    guard: ResourceGuard,
    stats: StatsSink,
    db: Option<Arc<GraphDb>>,
}

impl VcfvFrame {
    /// Creates an unbuilt vcFV engine.
    pub fn new(name: &'static str, matcher: Box<dyn Matcher>) -> Self {
        Self {
            name,
            matcher,
            query_budget: None,
            limits: ResourceLimits::unlimited(),
            guard: ResourceGuard::new(),
            stats: StatsSink::new(),
            db: None,
        }
    }

    fn built_db(&self) -> &Arc<GraphDb> {
        match &self.db {
            Some(db) => db,
            // Documented precondition (QueryEngine::query): build first.
            None => panic!("query before build"),
        }
    }

    /// Re-arms the engine's resource guard and kernel-stat sink, and builds
    /// the per-query deadline.
    fn deadline(&self) -> Deadline {
        self.guard.reset(self.limits);
        self.stats.reset();
        self.query_budget
            .map_or(Deadline::none(), Deadline::after)
            .with_guard(self.guard)
            .with_stats(self.stats)
    }

    fn query_over(&self, q: &Graph, graphs: &[GraphId]) -> QueryOutcome {
        let db = self.built_db();
        let deadline = self.deadline();
        let mut out = QueryOutcome::default();
        // Same per-graph path as the parallel pool: panics on one (query,
        // graph) pair are isolated into `failures`, interrupts stop the scan.
        for &gid in graphs {
            if !process_graph(&*self.matcher, db, q, gid, deadline, &mut out) {
                break;
            }
        }
        out.finalize();
        out.kernel = self.stats.snapshot();
        out.phases = self.stats.phase_snapshot();
        out
    }

    fn query_impl(&self, q: &Graph) -> QueryOutcome {
        let n = self.built_db().len();
        let all: Vec<GraphId> = (0..n as u32).map(GraphId).collect();
        self.query_over(q, &all)
    }
}

// ---------------------------------------------------------------------------
// IvcFV frame (two-level filtering)
// ---------------------------------------------------------------------------

/// Generic IvcFV engine: index filtering, then vertex-connectivity filtering,
/// then first-match enumeration (the paper's vcGrapes / vcGGSX).
pub struct IvcfvFrame {
    name: &'static str,
    kind: IndexKind,
    inner: VcfvFrame,
    build_budget: BuildBudget,
    index: Option<Box<dyn GraphIndex>>,
}

impl IvcfvFrame {
    /// Creates an unbuilt IvcFV engine.
    pub fn new(name: &'static str, kind: IndexKind, matcher: Box<dyn Matcher>) -> Self {
        Self {
            name,
            kind,
            inner: VcfvFrame::new(name, matcher),
            build_budget: BuildBudget::unlimited(),
            index: None,
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.build_budget = budget;
    }

    fn build_impl(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
        let t0 = Instant::now();
        let index = self.kind.build(db, &self.build_budget)?;
        let build_time = t0.elapsed();
        let index_bytes = index.heap_bytes();
        self.index = Some(index);
        self.inner.db = Some(Arc::clone(db));
        Ok(BuildReport { build_time, index_bytes })
    }

    fn query_impl(&self, q: &Graph) -> QueryOutcome {
        let db = self.inner.built_db();
        let index = match &self.index {
            Some(index) => index,
            // Documented precondition (QueryEngine::query): build first.
            None => panic!("query before build"),
        };
        let t0 = Instant::now();
        let level1 = index.candidates(q).into_ids(db.len());
        let index_time = t0.elapsed();
        let mut out = self.inner.query_over(q, &level1);
        out.filter_time += index_time;
        // The index probe runs before the inner frame resets its sink, so
        // its time is folded into the filter phase directly.
        let f = Phase::Filter.index();
        out.phases.nanos[f] = out.phases.nanos[f].saturating_add(index_time.as_nanos() as u64);
        out.phases.items[f] = out.phases.items[f].saturating_add(level1.len() as u64);
        out
    }
}

// ---------------------------------------------------------------------------
// Concrete engines
// ---------------------------------------------------------------------------

macro_rules! delegate_query_engine {
    ($ty:ty, $cat:expr, $frame:ident) => {
        impl QueryEngine for $ty {
            fn name(&self) -> &'static str {
                self.$frame.name
            }
            fn category(&self) -> EngineCategory {
                $cat
            }
            fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
                self.$frame.build_impl(db)
            }
            fn query(&self, q: &Graph) -> QueryOutcome {
                self.$frame.query_impl(q)
            }
            fn set_query_budget(&mut self, budget: Option<Duration>) {
                self.$frame.query_budget = budget;
            }
            fn set_resource_limits(&mut self, limits: ResourceLimits) {
                self.$frame.limits = limits;
            }
            fn set_build_budget(&mut self, budget: BuildBudget) {
                self.$frame.build_budget = budget;
            }
            fn index_bytes(&self) -> usize {
                self.$frame.index.as_ref().map_or(0, |i| i.heap_bytes())
            }
        }
    };
}

macro_rules! delegate_vcfv_engine {
    ($ty:ty) => {
        impl QueryEngine for $ty {
            fn name(&self) -> &'static str {
                self.frame.name
            }
            fn category(&self) -> EngineCategory {
                EngineCategory::VcFv
            }
            fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
                self.frame.db = Some(Arc::clone(db));
                Ok(BuildReport::default())
            }
            fn query(&self, q: &Graph) -> QueryOutcome {
                self.frame.query_impl(q)
            }
            fn set_query_budget(&mut self, budget: Option<Duration>) {
                self.frame.query_budget = budget;
            }
            fn set_resource_limits(&mut self, limits: ResourceLimits) {
                self.frame.limits = limits;
            }
            fn index_bytes(&self) -> usize {
                0
            }
        }
    };
}

macro_rules! delegate_ivcfv_engine {
    ($ty:ty) => {
        impl QueryEngine for $ty {
            fn name(&self) -> &'static str {
                self.frame.name
            }
            fn category(&self) -> EngineCategory {
                EngineCategory::IvcFv
            }
            fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
                self.frame.build_impl(db)
            }
            fn query(&self, q: &Graph) -> QueryOutcome {
                self.frame.query_impl(q)
            }
            fn set_query_budget(&mut self, budget: Option<Duration>) {
                self.frame.inner.query_budget = budget;
            }
            fn set_resource_limits(&mut self, limits: ResourceLimits) {
                self.frame.inner.limits = limits;
            }
            fn set_build_budget(&mut self, budget: BuildBudget) {
                self.frame.build_budget = budget;
            }
            fn index_bytes(&self) -> usize {
                self.frame.index.as_ref().map_or(0, |i| i.heap_bytes())
            }
        }
    };
}

/// Grapes: parallel path-trie index + VF2 (IFV).
pub struct GrapesEngine {
    frame: IfvFrame,
}

impl GrapesEngine {
    /// Grapes with the paper's configuration (paths ≤ 4 vertices, 6 threads).
    pub fn new() -> Self {
        Self::with_config(GrapesConfig::default())
    }

    /// Grapes with a custom configuration.
    pub fn with_config(config: GrapesConfig) -> Self {
        Self { frame: IfvFrame::new("Grapes", IndexKind::Grapes(config), Vf2Verifier::classic()) }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for GrapesEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_query_engine!(GrapesEngine, EngineCategory::Ifv, frame);

/// GGSX: sorted path dictionary + VF2 (IFV).
pub struct GgsxEngine {
    frame: IfvFrame,
}

impl GgsxEngine {
    /// GGSX with the paper's configuration (paths ≤ 4 vertices).
    pub fn new() -> Self {
        Self::with_max_path_vertices(4)
    }

    /// GGSX with a custom maximum path length.
    pub fn with_max_path_vertices(max_path_vertices: usize) -> Self {
        Self {
            frame: IfvFrame::new(
                "GGSX",
                IndexKind::Ggsx { max_path_vertices },
                Vf2Verifier::classic(),
            ),
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for GgsxEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_query_engine!(GgsxEngine, EngineCategory::Ifv, frame);

/// CT-Index: tree/cycle fingerprints + modified VF2 (IFV).
pub struct CtIndexEngine {
    frame: IfvFrame,
}

impl CtIndexEngine {
    /// CT-Index with the paper's configuration (4096-bit fingerprints,
    /// features ≤ size 4).
    pub fn new() -> Self {
        Self::with_config(CtIndexConfig::default())
    }

    /// CT-Index with a custom configuration.
    pub fn with_config(config: CtIndexConfig) -> Self {
        Self {
            frame: IfvFrame::new("CT-Index", IndexKind::CtIndex(config), Vf2Verifier::ct_index()),
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for CtIndexEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_query_engine!(CtIndexEngine, EngineCategory::Ifv, frame);

/// GraphGrep: hashed path fingerprints + VF2 (IFV) — the oldest
/// enumeration-based index of the paper's Table II, implemented as a
/// related-work extension.
pub struct GraphGrepEngine {
    frame: IfvFrame,
}

impl GraphGrepEngine {
    /// GraphGrep with the default configuration.
    pub fn new() -> Self {
        Self::with_config(GraphGrepConfig::default())
    }

    /// GraphGrep with a custom configuration.
    pub fn with_config(config: GraphGrepConfig) -> Self {
        Self {
            frame: IfvFrame::new("GraphGrep", IndexKind::GraphGrep(config), Vf2Verifier::classic()),
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for GraphGrepEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_query_engine!(GraphGrepEngine, EngineCategory::Ifv, frame);

/// CFL as a vcFV subgraph-query engine.
pub struct CflEngine {
    frame: VcfvFrame,
}

impl CflEngine {
    /// CFL with both refinement passes.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// CFL with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self { frame: VcfvFrame::new("CFL", Box::new(Cfl::new().with_matcher_config(config))) }
    }
}

impl Default for CflEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(CflEngine);

/// GraphQL as a vcFV subgraph-query engine.
pub struct GraphQlEngine {
    frame: VcfvFrame,
}

impl GraphQlEngine {
    /// GraphQL with the default pruning depth.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// GraphQL with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: VcfvFrame::new("GraphQL", Box::new(GraphQl::new().with_matcher_config(config))),
        }
    }
}

impl Default for GraphQlEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(GraphQlEngine);

/// CFQL (CFL filter + GraphQL enumeration) as a vcFV engine — the paper's
/// headline index-free algorithm.
pub struct CfqlEngine {
    frame: VcfvFrame,
}

impl CfqlEngine {
    /// The default CFQL engine.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// CFQL with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self { frame: VcfvFrame::new("CFQL", Box::new(Cfql::new().with_matcher_config(config))) }
    }
}

impl Default for CfqlEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(CfqlEngine);

/// Ullmann as a vcFV engine — a direct-enumeration baseline beyond the
/// paper's lineup (related-work coverage).
pub struct UllmannEngine {
    frame: VcfvFrame,
}

impl UllmannEngine {
    /// The default Ullmann engine.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// Ullmann with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: VcfvFrame::new("Ullmann", Box::new(Ullmann::new().with_matcher_config(config))),
        }
    }
}

impl Default for UllmannEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(UllmannEngine);

/// TurboIso as a vcFV engine — candidate-region based filtering and
/// enumeration (related-work extension beyond the paper's lineup).
pub struct TurboIsoEngine {
    frame: VcfvFrame,
}

impl TurboIsoEngine {
    /// The default TurboIso engine.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// TurboIso with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: VcfvFrame::new(
                "TurboIso",
                Box::new(TurboIso::new().with_matcher_config(config)),
            ),
        }
    }
}

impl Default for TurboIsoEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(TurboIsoEngine);

/// QuickSI as a vcFV engine — the QI-sequence direct-enumeration baseline
/// (related-work extension beyond the paper's lineup).
pub struct QuickSiEngine {
    frame: VcfvFrame,
}

impl QuickSiEngine {
    /// The default QuickSI engine.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// QuickSI with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: VcfvFrame::new("QuickSI", Box::new(QuickSi::new().with_matcher_config(config))),
        }
    }
}

impl Default for QuickSiEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(QuickSiEngine);

/// SPath as a vcFV engine — neighborhood-signature filtering
/// (related-work extension beyond the paper's lineup).
pub struct SPathEngine {
    frame: VcfvFrame,
}

impl SPathEngine {
    /// The default SPath engine (signature radius 2).
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// SPath with the given shared matcher configuration.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self { frame: VcfvFrame::new("SPath", Box::new(SPath::new().with_matcher_config(config))) }
    }
}

impl Default for SPathEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_vcfv_engine!(SPathEngine);

/// A vcFV engine over an *arbitrary* matcher — the adapter that lets
/// wrappers like the chaos harness's fault-injecting
/// [`ChaosMatcher`](crate::chaos::ChaosMatcher) run through the standard
/// sequential engine path (and therefore through
/// [`run_query_set`](crate::runner::run_query_set) and
/// [`CachedEngine`](crate::cache::CachedEngine)).
pub struct MatcherEngine {
    frame: VcfvFrame,
}

impl MatcherEngine {
    /// Wraps `matcher` as a named vcFV engine.
    pub fn new(name: &'static str, matcher: Box<dyn Matcher>) -> Self {
        Self { frame: VcfvFrame::new(name, matcher) }
    }
}

delegate_vcfv_engine!(MatcherEngine);

/// vcGrapes: Grapes index filtering + CFQL filtering and enumeration (IvcFV).
pub struct VcGrapesEngine {
    frame: IvcfvFrame,
}

impl VcGrapesEngine {
    /// vcGrapes with the paper's Grapes configuration.
    pub fn new() -> Self {
        Self::with_config(GrapesConfig::default())
    }

    /// vcGrapes with a custom Grapes configuration.
    pub fn with_config(config: GrapesConfig) -> Self {
        Self {
            frame: IvcfvFrame::new("vcGrapes", IndexKind::Grapes(config), Box::new(Cfql::new())),
        }
    }

    /// vcGrapes (default index configuration) with the given shared matcher
    /// configuration for the CFQL stage.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: IvcfvFrame::new(
                "vcGrapes",
                IndexKind::Grapes(GrapesConfig::default()),
                Box::new(Cfql::new().with_matcher_config(config)),
            ),
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for VcGrapesEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_ivcfv_engine!(VcGrapesEngine);

/// vcGGSX: GGSX index filtering + CFQL filtering and enumeration (IvcFV).
pub struct VcGgsxEngine {
    frame: IvcfvFrame,
}

impl VcGgsxEngine {
    /// vcGGSX with the paper's GGSX configuration.
    pub fn new() -> Self {
        Self::with_matcher_config(MatcherConfig::default())
    }

    /// vcGGSX with the given shared matcher configuration for the CFQL stage.
    pub fn with_matcher_config(config: MatcherConfig) -> Self {
        Self {
            frame: IvcfvFrame::new(
                "vcGGSX",
                IndexKind::Ggsx { max_path_vertices: 4 },
                Box::new(Cfql::new().with_matcher_config(config)),
            ),
        }
    }

    /// Sets the index-construction budget.
    pub fn set_build_budget(&mut self, budget: BuildBudget) {
        self.frame.set_build_budget(budget);
    }
}

impl Default for VcGgsxEngine {
    fn default() -> Self {
        Self::new()
    }
}

delegate_ivcfv_engine!(VcGgsxEngine);

// ---------------------------------------------------------------------------
// Parallel vcFV engine
// ---------------------------------------------------------------------------

/// A vcFV engine that runs its matcher over the database on a persistent
/// [`QueryPool`](crate::parallel::QueryPool) instead of a single thread.
///
/// Answers are identical to the corresponding sequential vcFV engine
/// (invariant I4); `filter_time`/`verify_time` are summed worker CPU times,
/// so on a multi-core machine they can exceed the query's wall-clock
/// latency. See `DESIGN.md` §2.4 for the timing semantics.
pub struct ParallelEngine {
    name: &'static str,
    matcher: Arc<dyn Matcher>,
    pool: crate::parallel::QueryPool,
    query_budget: Option<Duration>,
    limits: ResourceLimits,
    guard: ResourceGuard,
    db: Option<Arc<GraphDb>>,
}

impl ParallelEngine {
    /// Wraps `matcher` in a pool of `threads` persistent workers.
    pub fn new(name: &'static str, matcher: Arc<dyn Matcher>, threads: usize) -> Self {
        Self {
            name,
            matcher,
            pool: crate::parallel::QueryPool::new(threads),
            query_budget: None,
            limits: ResourceLimits::unlimited(),
            guard: ResourceGuard::new(),
            db: None,
        }
    }

    /// CFQL on a pool of `threads` workers — the parallel flagship.
    pub fn cfql(threads: usize) -> Self {
        Self::new("CFQL-par", Arc::new(Cfql::new()), threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The parallel outcome (with wall time) for one query; [`query`]
    /// (QueryEngine::query) is this minus the wall-clock wrapper.
    pub fn query_parallel(&self, q: &Graph) -> crate::parallel::ParallelOutcome {
        let db = match &self.db {
            Some(db) => db,
            // Documented precondition (QueryEngine::query): build first.
            None => panic!("query before build"),
        };
        self.guard.reset(self.limits);
        let deadline =
            self.query_budget.map_or(Deadline::none(), Deadline::after).with_guard(self.guard);
        self.pool.query(Arc::clone(&self.matcher), db, q, deadline)
    }
}

impl QueryEngine for ParallelEngine {
    fn name(&self) -> &'static str {
        self.name
    }
    fn category(&self) -> EngineCategory {
        EngineCategory::VcFv
    }
    fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
        self.db = Some(Arc::clone(db));
        Ok(BuildReport::default())
    }
    fn query(&self, q: &Graph) -> QueryOutcome {
        self.query_parallel(q).outcome
    }
    fn set_query_budget(&mut self, budget: Option<Duration>) {
        self.query_budget = budget;
    }
    fn set_resource_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }
    fn index_bytes(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// Service-backed vcFV engine
// ---------------------------------------------------------------------------

/// A vcFV engine whose queries flow through the admission-controlled
/// [`QueryService`](crate::service::QueryService): every
/// [`query`](QueryEngine::query) is a submit-and-wait on the serving layer,
/// so admission control, per-graph circuit breakers, and drain semantics all
/// apply — a query can come back [`Shed`](crate::engine::QueryStatus::Shed)
/// or carry [`Quarantined`](crate::engine::QueryStatus::Quarantined) graph
/// failures where a bare [`ParallelEngine`] would have run it unconditionally.
///
/// The service (and its worker threads) is created by
/// [`build`](QueryEngine::build) and replaced on rebuild; dropping the
/// engine drains it with a zero deadline.
pub struct ServiceEngine {
    name: &'static str,
    matcher: Arc<dyn Matcher>,
    config: crate::service::ServiceConfig,
    service: Option<crate::service::QueryService>,
}

impl ServiceEngine {
    /// Wraps `matcher` behind a [`QueryService`](crate::service::QueryService)
    /// with the given configuration.
    pub fn new(
        name: &'static str,
        matcher: Arc<dyn Matcher>,
        config: crate::service::ServiceConfig,
    ) -> Self {
        Self { name, matcher, config, service: None }
    }

    /// CFQL behind a service with `threads` pool workers and otherwise
    /// default serving policy.
    pub fn cfql(threads: usize) -> Self {
        let config = crate::service::ServiceConfig { threads, ..Default::default() };
        Self::new("CFQL-svc", Arc::new(Cfql::new()), config)
    }

    /// The underlying service, if [`build`](QueryEngine::build) has run.
    pub fn service(&self) -> Option<&crate::service::QueryService> {
        self.service.as_ref()
    }

    /// Drains the service (stops admissions, waits out in-flight work, then
    /// cancels) and returns the drain report. The engine reverts to its
    /// pre-`build` state; a later `build` starts a fresh service.
    pub fn shutdown(&mut self) -> Option<crate::service::DrainReport> {
        self.service.take().map(crate::service::QueryService::shutdown)
    }

    /// Current serving health, if built.
    pub fn health(&self) -> Option<crate::metrics::ServiceHealth> {
        self.service.as_ref().map(crate::service::QueryService::health)
    }
}

impl QueryEngine for ServiceEngine {
    fn name(&self) -> &'static str {
        self.name
    }
    fn category(&self) -> EngineCategory {
        EngineCategory::VcFv
    }
    fn build(&mut self, db: &Arc<GraphDb>) -> Result<BuildReport, BuildError> {
        // Replacing the service drains the old one (Drop drains with a zero
        // deadline), so rebuilds never leak worker threads.
        self.service = Some(crate::service::QueryService::new(
            Arc::clone(&self.matcher),
            Arc::clone(db),
            self.config.clone(),
        ));
        Ok(BuildReport::default())
    }
    fn query(&self, q: &Graph) -> QueryOutcome {
        let service = match &self.service {
            Some(s) => s,
            // Documented precondition (QueryEngine::query): build first.
            None => panic!("query before build"),
        };
        let (ticket, _admission) = service.submit(q);
        ticket.wait().0
    }
    fn set_query_budget(&mut self, budget: Option<Duration>) {
        self.config.runner.query_budget = budget;
        if let Some(service) = &self.service {
            let mut runner = service.runner_config();
            runner.query_budget = budget;
            service.set_runner_config(runner);
        }
    }
    fn set_resource_limits(&mut self, limits: ResourceLimits) {
        self.config.runner.limits = limits;
        if let Some(service) = &self.service {
            let mut runner = service.runner_config();
            runner.limits = limits;
            service.set_runner_config(runner);
        }
    }
    fn index_bytes(&self) -> usize {
        0
    }
}

/// Looks a bare matcher up by its (case-insensitive) name, e.g. `"cfql"`,
/// `"graphql"` — the matchers usable inside [`ParallelEngine`] and
/// [`QueryPool`](crate::parallel::QueryPool).
pub fn matcher_by_name(name: &str) -> Option<Arc<dyn Matcher>> {
    matcher_by_name_with(name, MatcherConfig::default())
}

/// [`matcher_by_name`] with a shared matcher configuration (enumeration
/// kernel) applied to the resolved matcher.
pub fn matcher_by_name_with(name: &str, config: MatcherConfig) -> Option<Arc<dyn Matcher>> {
    let m: Arc<dyn Matcher> = match name.to_ascii_lowercase().as_str() {
        "cfql" => Arc::new(Cfql::new().with_matcher_config(config)),
        "cfl" => Arc::new(Cfl::new().with_matcher_config(config)),
        "graphql" => Arc::new(GraphQl::new().with_matcher_config(config)),
        "ullmann" => Arc::new(Ullmann::new().with_matcher_config(config)),
        "quicksi" => Arc::new(QuickSi::new().with_matcher_config(config)),
        "turboiso" => Arc::new(TurboIso::new().with_matcher_config(config)),
        "spath" => Arc::new(SPath::new().with_matcher_config(config)),
        _ => return None,
    };
    Some(m)
}

/// All eight paper engines with default configurations, in Table III order.
pub fn paper_engines() -> Vec<Box<dyn QueryEngine>> {
    paper_engines_with(MatcherConfig::default())
}

/// [`paper_engines`] with a shared matcher configuration applied to every
/// engine that enumerates through the shared [`Enumerator`]
/// (sqp_matching::Enumerator); the VF2-based IFV engines ignore it.
pub fn paper_engines_with(config: MatcherConfig) -> Vec<Box<dyn QueryEngine>> {
    vec![
        Box::new(CtIndexEngine::new()),
        Box::new(GrapesEngine::new()),
        Box::new(GgsxEngine::new()),
        Box::new(CflEngine::with_matcher_config(config)),
        Box::new(GraphQlEngine::with_matcher_config(config)),
        Box::new(CfqlEngine::with_matcher_config(config)),
        Box::new(VcGrapesEngine::with_matcher_config(config)),
        Box::new(VcGgsxEngine::with_matcher_config(config)),
    ]
}

/// The paper engines plus the related-work baselines implemented beyond the
/// paper's lineup (Ullmann, QuickSI, TurboIso).
pub fn all_engines() -> Vec<Box<dyn QueryEngine>> {
    all_engines_with(MatcherConfig::default())
}

/// [`all_engines`] with a shared matcher configuration (see
/// [`paper_engines_with`]).
pub fn all_engines_with(config: MatcherConfig) -> Vec<Box<dyn QueryEngine>> {
    let mut v = paper_engines_with(config);
    v.push(Box::new(UllmannEngine::with_matcher_config(config)));
    v.push(Box::new(QuickSiEngine::with_matcher_config(config)));
    v.push(Box::new(TurboIsoEngine::with_matcher_config(config)));
    v.push(Box::new(SPathEngine::with_matcher_config(config)));
    v.push(Box::new(GraphGrepEngine::new()));
    v
}

/// Looks an engine up by its (case-insensitive) paper name, e.g. `"cfql"`,
/// `"vcgrapes"`, `"ct-index"`.
pub fn engine_by_name(name: &str) -> Option<Box<dyn QueryEngine>> {
    engine_by_name_with(name, MatcherConfig::default())
}

/// [`engine_by_name`] with a shared matcher configuration (see
/// [`paper_engines_with`]).
pub fn engine_by_name_with(name: &str, config: MatcherConfig) -> Option<Box<dyn QueryEngine>> {
    let lower = name.to_ascii_lowercase();
    if lower == "adaptive" {
        // The routing meta-engine lives outside the fixed lineup: it is not
        // one of the paper's engines, so `all_engines` (and the comparisons
        // built on it) never enumerate it.
        return Some(Box::new(crate::adaptive::AdaptiveEngine::with_matcher_config(config)));
    }
    all_engines_with(config).into_iter().find(|e| e.name().to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn small_db() -> Arc<GraphDb> {
        Arc::new(GraphDb::from_graphs(vec![
            // G0: triangle 0-1-2.
            labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            // G1: path 0-1-2.
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
            // G2: unrelated.
            labeled(&[3, 3], &[(0, 1)]),
        ]))
    }

    #[test]
    fn all_engines_agree_on_answers() {
        let db = small_db();
        let q_edge = labeled(&[0, 1], &[(0, 1)]);
        let q_tri = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let mut engines = paper_engines();
        engines.push(Box::new(UllmannEngine::new()));
        for e in engines.iter_mut() {
            e.build(&db).unwrap();
            let a = e.query(&q_edge).answers;
            assert_eq!(a, vec![GraphId(0), GraphId(1)], "engine {}", e.name());
            let a = e.query(&q_tri).answers;
            assert_eq!(a, vec![GraphId(0)], "engine {}", e.name());
        }
    }

    #[test]
    fn service_engine_matches_sequential_answers() {
        let db = small_db();
        let q_edge = labeled(&[0, 1], &[(0, 1)]);
        let q_tri = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let mut e = ServiceEngine::cfql(2);
        e.build(&db).unwrap();
        assert_eq!(e.query(&q_edge).answers, vec![GraphId(0), GraphId(1)]);
        assert_eq!(e.query(&q_tri).answers, vec![GraphId(0)]);
        let health = e.health().unwrap();
        assert_eq!(health.admitted, 2);
        assert_eq!(health.finished, 2);
        let report = e.shutdown().unwrap();
        assert!(report.drained_within_deadline);
        assert!(e.service().is_none());
    }

    #[test]
    fn service_engine_budget_reaches_the_running_service() {
        let db = small_db();
        let mut e = ServiceEngine::cfql(1);
        e.build(&db).unwrap();
        e.set_query_budget(Some(Duration::from_secs(7)));
        let svc = e.service().unwrap();
        assert_eq!(svc.runner_config().query_budget, Some(Duration::from_secs(7)));
    }

    #[test]
    fn vcfv_reports_aux_bytes_and_no_index() {
        let db = small_db();
        let mut e = CfqlEngine::new();
        e.build(&db).unwrap();
        assert_eq!(e.index_bytes(), 0);
        let out = e.query(&labeled(&[0, 1], &[(0, 1)]));
        assert!(out.aux_bytes > 0);
        assert_eq!(out.candidates, 2);
    }

    #[test]
    fn ifv_reports_index_bytes() {
        let db = small_db();
        let mut e = GrapesEngine::new();
        let report = e.build(&db).unwrap();
        assert!(report.index_bytes > 0);
        assert_eq!(e.index_bytes(), report.index_bytes);
    }

    #[test]
    fn ivcfv_candidates_no_larger_than_ifv() {
        let db = small_db();
        let mut grapes = GrapesEngine::new();
        let mut vc = VcGrapesEngine::new();
        grapes.build(&db).unwrap();
        vc.build(&db).unwrap();
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let a = grapes.query(&q);
        let b = vc.query(&q);
        assert!(b.candidates <= a.candidates);
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn build_budget_propagates_oot() {
        let db = small_db();
        let mut e = CtIndexEngine::new();
        e.set_build_budget(BuildBudget::unlimited().with_memory(1));
        assert!(e.build(&db).is_err());
    }

    #[test]
    fn registry_finds_every_engine() {
        for e in all_engines() {
            let found = engine_by_name(e.name()).expect("registered");
            assert_eq!(found.name(), e.name());
            // Case-insensitive lookup.
            let found = engine_by_name(&e.name().to_ascii_uppercase()).expect("case-insensitive");
            assert_eq!(found.name(), e.name());
        }
        assert!(engine_by_name("no-such-engine").is_none());
    }

    #[test]
    fn paper_engines_are_table_iii() {
        let names: Vec<&str> = paper_engines().iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            ["CT-Index", "Grapes", "GGSX", "CFL", "GraphQL", "CFQL", "vcGrapes", "vcGGSX"]
        );
        assert_eq!(all_engines().len(), 13);
    }

    #[test]
    fn parallel_engine_matches_sequential() {
        let db = small_db();
        let mut seq = CfqlEngine::new();
        let mut par = ParallelEngine::cfql(4);
        seq.build(&db).unwrap();
        par.build(&db).unwrap();
        for q in [
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            labeled(&[3, 3], &[(0, 1)]),
        ] {
            let a = seq.query(&q);
            let b = par.query(&q);
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.candidates, b.candidates);
        }
        let po = par.query_parallel(&labeled(&[0, 1], &[(0, 1)]));
        assert_eq!(po.threads, 4);
    }

    #[test]
    fn matcher_registry_resolves_known_names() {
        for name in ["CFQL", "cfl", "GraphQL", "ullmann", "quicksi", "turboiso", "spath"] {
            assert!(matcher_by_name(name).is_some(), "{name}");
        }
        assert!(matcher_by_name("vf2-nope").is_none());
    }

    #[test]
    fn categories_are_correct() {
        assert_eq!(GrapesEngine::new().category(), EngineCategory::Ifv);
        assert_eq!(CfqlEngine::new().category(), EngineCategory::VcFv);
        assert_eq!(VcGgsxEngine::new().category(), EngineCategory::IvcFv);
    }
}
