//! Deterministic fault injection for the fault-tolerant execution layer.
//!
//! [`ChaosMatcher`] wraps any [`Matcher`] and injects one of three faults —
//! a panic, a simulated wall-clock timeout, or a tripped resource budget —
//! on a deterministic subset of (query, graph) pairs. The fault decision is
//! a pure function of the configured seed and *structural fingerprints* of
//! the query and data graph, so:
//!
//! * the same (seed, query, graph) always faults the same way, at every
//!   thread count and in any execution order (the basis of the chaos suite's
//!   invariant I5 checks);
//! * tests can ask [`ChaosMatcher::planned_fault`] which pairs will fault
//!   without running anything.
//!
//! Faults are injected in the *filter* phase — the first matcher call a
//! (query, graph) pair reaches, sequential or parallel — so an injected
//! fault is observed exactly once per pair per run.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use sqp_graph::hash::FxHasher;
use sqp_graph::Graph;
use sqp_matching::{
    CandidateSpace, Deadline, Embedding, FilterResult, Matcher, ResourceKind, Timeout,
};

/// Which fault to inject on a (query, graph) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` inside the matcher call (tests per-query panic isolation).
    Panic,
    /// Return `Err(Timeout)` as if the wall clock expired mid-filter.
    Timeout,
    /// Trip the deadline's [`ResourceGuard`](sqp_matching::ResourceGuard)
    /// (steps budget) and return `Err(Timeout)`, as a runaway enumeration
    /// stopped by the guard would.
    Exhaust,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Timeout => write!(f, "timeout"),
            FaultKind::Exhaust => write!(f, "exhaust"),
        }
    }
}

/// Fault-injection configuration. Rates are in per-mille (‰) of (query,
/// graph) pairs; the three rates are disjoint slices of the same hash space,
/// so their sum must stay ≤ 1000.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// Fraction of pairs that panic, in per-mille.
    pub panic_per_mille: u32,
    /// Fraction of pairs that fake a timeout, in per-mille.
    pub timeout_per_mille: u32,
    /// Fraction of pairs that trip the resource guard, in per-mille.
    pub exhaust_per_mille: u32,
}

impl ChaosConfig {
    /// A configuration with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        Self { seed, panic_per_mille: 0, timeout_per_mille: 0, exhaust_per_mille: 0 }
    }

    /// Sets the panic rate (per-mille of pairs).
    pub fn with_panics(mut self, per_mille: u32) -> Self {
        self.panic_per_mille = per_mille;
        self
    }

    /// Sets the fake-timeout rate (per-mille of pairs).
    pub fn with_timeouts(mut self, per_mille: u32) -> Self {
        self.timeout_per_mille = per_mille;
        self
    }

    /// Sets the resource-exhaustion rate (per-mille of pairs).
    pub fn with_exhaustion(mut self, per_mille: u32) -> Self {
        self.exhaust_per_mille = per_mille;
        self
    }

    fn total_per_mille(&self) -> u32 {
        self.panic_per_mille + self.timeout_per_mille + self.exhaust_per_mille
    }
}

/// Structural fingerprint of a graph: a hash of its labels and adjacency,
/// independent of where the graph lives in memory or in a database.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = FxHasher::default();
    g.vertex_count().hash(&mut h);
    g.edge_count().hash(&mut h);
    for v in g.vertices() {
        g.label(v).0.hash(&mut h);
        for &u in g.neighbors(v) {
            u.0.hash(&mut h);
        }
        u32::MAX.hash(&mut h); // separator
    }
    h.finish()
}

/// A fault-injecting wrapper around any [`Matcher`].
///
/// See the [module docs](self) for the determinism guarantees.
pub struct ChaosMatcher {
    inner: Arc<dyn Matcher>,
    config: ChaosConfig,
}

impl ChaosMatcher {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: Arc<dyn Matcher>, config: ChaosConfig) -> Self {
        assert!(
            config.total_per_mille() <= 1000,
            "chaos fault rates exceed 1000 per mille: {config:?}"
        );
        Self { inner, config }
    }

    /// The deterministic per-pair fault key.
    fn fault_key(&self, q: &Graph, g: &Graph) -> u64 {
        let mut h = FxHasher::default();
        self.config.seed.hash(&mut h);
        graph_fingerprint(q).hash(&mut h);
        graph_fingerprint(g).hash(&mut h);
        h.finish()
    }

    /// Which fault (if any) this wrapper will inject on the (q, g) pair —
    /// a pure function of (seed, q, g), usable by tests to predict the fault
    /// set without running a query.
    pub fn planned_fault(&self, q: &Graph, g: &Graph) -> Option<FaultKind> {
        let slot = (self.fault_key(q, g) % 1000) as u32;
        if slot < self.config.panic_per_mille {
            Some(FaultKind::Panic)
        } else if slot < self.config.panic_per_mille + self.config.timeout_per_mille {
            Some(FaultKind::Timeout)
        } else if slot < self.config.total_per_mille() {
            Some(FaultKind::Exhaust)
        } else {
            None
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }
}

impl Matcher for ChaosMatcher {
    fn name(&self) -> &'static str {
        "Chaos"
    }

    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        match self.planned_fault(q, g) {
            Some(FaultKind::Panic) => {
                panic!("chaos: injected panic (key {:016x})", self.fault_key(q, g));
            }
            Some(FaultKind::Timeout) => Err(Timeout),
            Some(FaultKind::Exhaust) => {
                // Trip the shared guard exactly as a blown step budget would,
                // then surface the interrupt through the normal error path.
                deadline.guard().trip(ResourceKind::Steps);
                Err(Timeout)
            }
            None => self.inner.filter(q, g, deadline),
        }
    }

    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }

    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

/// A sequential chaos engine: [`ChaosMatcher`] over CFQL run through the
/// standard vcFV engine path, so chaos runs exercise the same
/// `run_query_set` / `CachedEngine` machinery as production engines.
pub fn chaos_engine(config: ChaosConfig) -> crate::engines::MatcherEngine {
    let matcher = ChaosMatcher::new(Arc::new(sqp_matching::cfql::Cfql::new()), config);
    crate::engines::MatcherEngine::new("Chaos", Box::new(matcher))
}

// ---------------------------------------------------------------------------
// Overload / flappy-graph scenario generators for the serving layer
// ---------------------------------------------------------------------------

/// Configuration of a [`FlappyMatcher`] scenario: which graphs flap and for
/// how long.
#[derive(Clone, Copy, Debug)]
pub struct FlappyConfig {
    /// Seed mixed into the flappy-graph selection.
    pub seed: u64,
    /// Fraction of data graphs that flap, in per-mille of the fingerprint
    /// hash space.
    pub flappy_per_mille: u32,
    /// A flappy graph panics on its first this-many matcher probes, then
    /// heals permanently — the transient-fault shape circuit breakers must
    /// trip on, probe, and recover from.
    pub faults_before_heal: u32,
}

/// The breaker-lifecycle scenario generator: deterministic *flappy* graphs.
///
/// A flappy graph (selected by seed + structural fingerprint, like
/// [`ChaosMatcher`]'s faults) panics on its first
/// [`faults_before_heal`](FlappyConfig::faults_before_heal) filter probes
/// and then behaves normally. Because a quarantined graph never reaches the
/// matcher, the per-graph probe counter advances only on real probes — so
/// with breakers in front, the counter doubles as a check that open
/// breakers short-circuit (see [`probes`](FlappyMatcher::probes)).
///
/// Intended for single-submitter serving tests with retries disabled; each
/// admitted query probes each unmasked graph exactly once, keeping the
/// fault schedule deterministic at every worker thread count (panics never
/// interrupt the scan).
pub struct FlappyMatcher {
    inner: Arc<dyn Matcher>,
    config: FlappyConfig,
    probes: std::sync::Mutex<std::collections::HashMap<u64, u32>>,
}

impl FlappyMatcher {
    /// Wraps `inner` with the given flap schedule.
    pub fn new(inner: Arc<dyn Matcher>, config: FlappyConfig) -> Self {
        assert!(config.flappy_per_mille <= 1000, "flappy rate exceeds 1000 per mille");
        Self { inner, config, probes: std::sync::Mutex::new(std::collections::HashMap::new()) }
    }

    fn flap_key(&self, g: &Graph) -> u64 {
        let mut h = FxHasher::default();
        self.config.seed.hash(&mut h);
        graph_fingerprint(g).hash(&mut h);
        h.finish()
    }

    /// Whether this data graph is on the flap schedule — a pure function of
    /// (seed, graph structure), so tests can predict the flappy set.
    pub fn is_flappy(&self, g: &Graph) -> bool {
        ((self.flap_key(g) % 1000) as u32) < self.config.flappy_per_mille
    }

    /// How many times the matcher has actually been probed with this data
    /// graph (across all queries). Quarantined graphs are short-circuited
    /// before the matcher, so their count stands still while their breaker
    /// is open.
    pub fn probes(&self, g: &Graph) -> u32 {
        self.probes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&graph_fingerprint(g))
            .copied()
            .unwrap_or(0)
    }
}

impl Matcher for FlappyMatcher {
    fn name(&self) -> &'static str {
        "Flappy"
    }

    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        let n = {
            let mut probes = self.probes.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let n = probes.entry(graph_fingerprint(g)).or_insert(0);
            *n += 1;
            *n
        };
        if self.is_flappy(g) && n <= self.config.faults_before_heal {
            panic!("chaos: flappy fault {n}/{}", self.config.faults_before_heal);
        }
        self.inner.filter(q, g, deadline)
    }

    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }

    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

/// The overload scenario generator: a matcher that sleeps `delay` per
/// filter call, making each query slow enough for work to pile up in the
/// admission queue — the load shape behind queue-full shedding and
/// drain-under-load tests.
pub struct SlowMatcher {
    inner: Arc<dyn Matcher>,
    delay: std::time::Duration,
}

impl SlowMatcher {
    /// Wraps `inner`, sleeping `delay` before every filter call.
    pub fn new(inner: Arc<dyn Matcher>, delay: std::time::Duration) -> Self {
        Self { inner, delay }
    }
}

impl Matcher for SlowMatcher {
    fn name(&self) -> &'static str {
        "Slow"
    }

    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        // Sleep in deadline-check slices so cancellation stays prompt.
        let mut left = self.delay;
        let slice = std::time::Duration::from_millis(1);
        while !left.is_zero() {
            deadline.check()?;
            let step = left.min(slice);
            std::thread::sleep(step);
            left -= step;
        }
        deadline.check()?;
        self.inner.filter(q, g, deadline)
    }

    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }

    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

/// The wedge scenario generator: a matcher that, on the single
/// `(query, graph)` pair whose [`graph_fingerprint`]s match its targets,
/// spins **without ever ticking the deadline** — the exact failure mode
/// cooperative cancellation cannot handle and the supervisor exists for.
/// Every other pair delegates to the wrapped matcher, so queries that do
/// not hit the wedge pair are untouched (the I8 comparison relies on this).
///
/// The wedge holds until [`release`](StuckMatcher::release_handle) is set
/// (tests flip it during teardown so abandoned threads can exit) or the
/// process ends.
pub struct StuckMatcher {
    inner: Arc<dyn Matcher>,
    q_target: u64,
    g_target: u64,
    release: Arc<std::sync::atomic::AtomicBool>,
}

impl StuckMatcher {
    /// Wraps `inner`, wedging on the query fingerprinted `q_target` when it
    /// filters the data graph fingerprinted `g_target`.
    pub fn new(inner: Arc<dyn Matcher>, q_target: u64, g_target: u64) -> Self {
        Self {
            inner,
            q_target,
            g_target,
            release: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// The release latch: storing `true` lets every wedged call return
    /// (as [`FilterResult::Pruned`]).
    pub fn release_handle(&self) -> Arc<std::sync::atomic::AtomicBool> {
        Arc::clone(&self.release)
    }
}

impl Matcher for StuckMatcher {
    fn name(&self) -> &'static str {
        "Stuck"
    }

    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        if graph_fingerprint(q) == self.q_target && graph_fingerprint(g) == self.g_target {
            // Deliberately no deadline.check(): no heartbeat, no
            // cancellation. Sleep in slices only to stay polite to the CPU.
            while !self.release.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            return Ok(FilterResult::Pruned);
        }
        self.inner.filter(q, g, deadline)
    }

    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }

    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

/// Deterministic torn-write injection for journal chaos: returns `bytes`
/// truncated to a seed-derived length in `[0, bytes.len()]`, simulating the
/// arbitrary cut a crash mid-append leaves behind. Pure function of
/// `(seed, bytes.len())`.
pub fn torn_tail(bytes: &[u8], seed: u64) -> &[u8] {
    let mut h = FxHasher::default();
    seed.hash(&mut h);
    bytes.len().hash(&mut h);
    let cut = (h.finish() % (bytes.len() as u64 + 1)) as usize;
    &bytes[..cut]
}

// ---------------------------------------------------------------------------
// Update-stream scenario generator for the dynamic-graph layer
// ---------------------------------------------------------------------------

use std::collections::BTreeSet;

use sqp_graph::{Label, Update, VertexId};

/// Shape of a generated update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamProfile {
    /// Adds, removals and occasional duplicate-edge no-ops in balance.
    Mixed,
    /// Mostly vertex/edge additions (growth workload).
    AddHeavy,
    /// Mostly edge/vertex removals (shrink workload).
    RemoveHeavy,
    /// Add-then-remove of the *same* element inside one batch, plus
    /// re-adds after tombstoning — the batch-simulation edge cases.
    Churn,
}

/// Deterministic generator of *valid* update batches against a mirrored
/// graph state, seeded like [`ChaosMatcher`] so the same
/// `(seed, base graph, profile)` always yields the same stream at every
/// thread count.
///
/// The generator maintains its own mirror of the overlay (labels, liveness,
/// edge set, slot count) and advances it as it emits each op, so every batch
/// it returns is accepted by
/// [`DynamicGraph::apply_batch`](sqp_graph::DynamicGraph::apply_batch) —
/// including intentionally tricky-but-legal cases: duplicate edge adds
/// (no-ops), edges referencing vertices added earlier in the same batch, and
/// re-adding a tombstoned slot's label as a fresh vertex.
/// [`malformed_batches`](Self::malformed_batches) produces the complementary
/// *invalid* cases, each of which must fail closed.
#[derive(Clone, Debug)]
pub struct UpdateStreamGen {
    state: u64,
    profile: StreamProfile,
    labels: Vec<Label>,          // per slot; grows with AddVertex
    alive: Vec<bool>,            // per slot
    live: Vec<VertexId>,         // pickable list of live slots
    dead_labels: Vec<Label>,     // labels of tombstoned slots, for re-adds
    edges: BTreeSet<(u32, u32)>, // normalized u < v
    label_pool: Vec<Label>,
}

fn norm(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

impl UpdateStreamGen {
    /// Mirrors `base` (all vertices live, no delta) with the given seed and
    /// profile. Seeding is mixed with the base graph's structural
    /// [`graph_fingerprint`], so distinct bases get distinct streams even
    /// under the same seed.
    pub fn new(base: &Graph, seed: u64, profile: StreamProfile) -> Self {
        let mut h = FxHasher::default();
        seed.hash(&mut h);
        graph_fingerprint(base).hash(&mut h);
        let labels: Vec<Label> = base.vertices().map(|v| base.label(v)).collect();
        let mut edges = BTreeSet::new();
        for u in base.vertices() {
            for &v in base.neighbors(u) {
                edges.insert(norm(u, v));
            }
        }
        let mut label_pool: Vec<Label> = labels.clone();
        label_pool.sort_unstable();
        label_pool.dedup();
        let fresh = label_pool.last().map_or(0, |l| l.0 + 1);
        label_pool.push(Label(fresh)); // one label unseen in the base
        Self {
            state: h.finish(),
            profile,
            live: base.vertices().collect(),
            alive: vec![true; labels.len()],
            labels,
            dead_labels: Vec::new(),
            edges,
            label_pool,
        }
    }

    fn next(&mut self) -> u64 {
        // splitmix64: full-period, seed-stable, no external dependency.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n as u64) as usize
    }

    /// Live vertices in the mirror.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Edges in the mirror.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn mirror_add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.alive.push(true);
        self.live.push(id);
        id
    }

    fn mirror_remove_vertex(&mut self, v: VertexId) {
        self.alive[v.index()] = false;
        if let Some(pos) = self.live.iter().position(|&x| x == v) {
            self.live.swap_remove(pos);
        }
        self.dead_labels.push(self.labels[v.index()]);
        self.edges.retain(|&(a, b)| a != v.0 && b != v.0);
    }

    fn gen_add_vertex(&mut self, out: &mut Vec<Update>) -> VertexId {
        // Prefer re-adding a tombstoned slot's label when one exists: the
        // id is never reused but the label returns, the re-add-after-
        // tombstone case the differential suite needs covered.
        let label = if !self.dead_labels.is_empty() && self.next().is_multiple_of(2) {
            let i = self.roll(self.dead_labels.len());
            self.dead_labels[i]
        } else {
            let i = self.roll(self.label_pool.len());
            self.label_pool[i]
        };
        out.push(Update::AddVertex { label });
        self.mirror_add_vertex(label)
    }

    fn gen_add_edge(&mut self, out: &mut Vec<Update>) -> Option<(VertexId, VertexId)> {
        if self.live.len() < 2 {
            return None;
        }
        for _ in 0..8 {
            let (i, j) = (self.roll(self.live.len()), self.roll(self.live.len()));
            let (u, v) = (self.live[i], self.live[j]);
            if u == v || self.edges.contains(&norm(u, v)) {
                continue;
            }
            out.push(Update::AddEdge { u, v });
            self.edges.insert(norm(u, v));
            return Some((u, v));
        }
        None
    }

    fn gen_duplicate_edge(&mut self, out: &mut Vec<Update>) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        let i = self.roll(self.edges.len());
        let &(a, b) = match self.edges.iter().nth(i) {
            Some(e) => e,
            None => return false,
        };
        // A legal no-op: AddEdge over a present edge applies as Ok(false).
        out.push(Update::AddEdge { u: VertexId(a), v: VertexId(b) });
        true
    }

    fn gen_remove_edge(&mut self, out: &mut Vec<Update>) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        let i = self.roll(self.edges.len());
        let &(a, b) = match self.edges.iter().nth(i) {
            Some(e) => e,
            None => return false,
        };
        self.edges.remove(&(a, b));
        out.push(Update::RemoveEdge { u: VertexId(a), v: VertexId(b) });
        true
    }

    fn gen_remove_vertex(&mut self, out: &mut Vec<Update>) -> bool {
        if self.live.is_empty() {
            return false;
        }
        let i = self.roll(self.live.len());
        let v = self.live[i];
        self.mirror_remove_vertex(v);
        out.push(Update::RemoveVertex { vertex: v });
        true
    }

    /// Generates the next batch of at least `ops` updates (a paired churn
    /// step may add one more), advancing the mirror as if the batch were
    /// applied — which it must be, for the mirror to stay faithful.
    pub fn batch(&mut self, ops: usize) -> Vec<Update> {
        let mut out = Vec::with_capacity(ops);
        while out.len() < ops {
            match self.profile {
                StreamProfile::Churn => self.churn_step(&mut out),
                profile => {
                    let die = self.roll(100);
                    let (av, ae, re, dup) = match profile {
                        StreamProfile::Mixed => (15, 60, 85, 90),
                        StreamProfile::AddHeavy => (25, 90, 95, 100),
                        StreamProfile::RemoveHeavy => (5, 20, 65, 70),
                        StreamProfile::Churn => unreachable!(),
                    };
                    if die < av {
                        self.gen_add_vertex(&mut out);
                    } else if die < ae {
                        if self.gen_add_edge(&mut out).is_none() {
                            self.gen_add_vertex(&mut out);
                        }
                    } else if die < re {
                        if !self.gen_remove_edge(&mut out) {
                            self.gen_add_vertex(&mut out);
                        }
                    } else if die < dup {
                        if !self.gen_duplicate_edge(&mut out) {
                            self.gen_add_vertex(&mut out);
                        }
                    } else if !self.gen_remove_vertex(&mut out) {
                        self.gen_add_vertex(&mut out);
                    }
                }
            }
        }
        // A churn step may push two ops at the boundary; never truncate —
        // the mirror has already applied everything in `out`.
        out
    }

    /// One churn step: add-then-remove the same element within the batch.
    fn churn_step(&mut self, out: &mut Vec<Update>) {
        match self.roll(3) {
            0 => {
                // Add an edge and remove it again in the same batch.
                if let Some((u, v)) = self.gen_add_edge(out) {
                    self.edges.remove(&norm(u, v));
                    out.push(Update::RemoveEdge { u, v });
                } else {
                    self.gen_add_vertex(out);
                }
            }
            1 => {
                // Add a vertex and tombstone it in the same batch.
                let v = self.gen_add_vertex(out);
                self.mirror_remove_vertex(v);
                out.push(Update::RemoveVertex { vertex: v });
            }
            _ => {
                // Remove an existing edge, then re-add it.
                if self.gen_remove_edge(out) {
                    if let Some(Update::RemoveEdge { u, v }) = out.last().copied() {
                        self.edges.insert(norm(u, v));
                        out.push(Update::AddEdge { u, v });
                    }
                } else {
                    self.gen_add_vertex(out);
                }
            }
        }
    }

    /// Malformed single-batch cases against the *current* mirror state.
    /// Every returned batch must be rejected atomically by
    /// `apply_batch` with a [`GraphError`](sqp_graph::GraphError) — never a
    /// panic — leaving the overlay untouched. The mirror does not advance.
    pub fn malformed_batches(&mut self) -> Vec<Vec<Update>> {
        let mut cases = Vec::new();
        let unknown = VertexId(self.labels.len() as u32 + 7);
        // Removing an edge that does not exist (dangling remove).
        if self.live.len() >= 2 {
            for _ in 0..16 {
                let (i, j) = (self.roll(self.live.len()), self.roll(self.live.len()));
                let (u, v) = (self.live[i], self.live[j]);
                if u != v && !self.edges.contains(&norm(u, v)) {
                    cases.push(vec![Update::RemoveEdge { u, v }]);
                    break;
                }
            }
        }
        if let Some(&v) = self.live.first() {
            // Self loops are rejected.
            cases.push(vec![Update::AddEdge { u: v, v }]);
            // Unknown endpoint.
            cases.push(vec![Update::AddEdge { u: v, v: unknown }]);
            // Double-remove of the same vertex in one batch.
            cases
                .push(vec![Update::RemoveVertex { vertex: v }, Update::RemoveVertex { vertex: v }]);
        }
        // Unknown vertex removal.
        cases.push(vec![Update::RemoveVertex { vertex: unknown }]);
        // Operating on a tombstoned slot: ids are never reused.
        if let Some(i) = self.alive.iter().position(|&a| !a) {
            let dead = VertexId(i as u32);
            if let Some(&live) = self.live.first() {
                cases.push(vec![Update::AddEdge { u: dead, v: live }]);
            }
            cases.push(vec![Update::RemoveVertex { vertex: dead }]);
        }
        // Same-batch double-remove of one edge.
        if let Some(&(a, b)) = self.edges.iter().next() {
            cases.push(vec![
                Update::RemoveEdge { u: VertexId(a), v: VertexId(b) },
                Update::RemoveEdge { u: VertexId(a), v: VertexId(b) },
            ]);
        }
        cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};
    use sqp_matching::cfql::Cfql;

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn chaos(config: ChaosConfig) -> ChaosMatcher {
        ChaosMatcher::new(Arc::new(Cfql::new()), config)
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = labeled(&[0, 1], &[(0, 1)]);
        let b = labeled(&[0, 1], &[(0, 1)]);
        let c = labeled(&[0, 2], &[(0, 1)]);
        assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
        assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
    }

    #[test]
    fn planned_faults_are_deterministic_and_seed_sensitive() {
        let graphs: Vec<Graph> =
            (0..50).map(|i| labeled(&[i % 5, (i + 1) % 5], &[(0, 1)])).collect();
        let q = labeled(&[0, 1], &[(0, 1)]);
        let m1 = chaos(ChaosConfig::new(42).with_panics(150).with_timeouts(150));
        let m2 = chaos(ChaosConfig::new(42).with_panics(150).with_timeouts(150));
        let m3 = chaos(ChaosConfig::new(43).with_panics(150).with_timeouts(150));
        let f1: Vec<_> = graphs.iter().map(|g| m1.planned_fault(&q, g)).collect();
        let f2: Vec<_> = graphs.iter().map(|g| m2.planned_fault(&q, g)).collect();
        let f3: Vec<_> = graphs.iter().map(|g| m3.planned_fault(&q, g)).collect();
        assert_eq!(f1, f2);
        assert_ne!(f1, f3, "different seeds should move the fault set");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let m = chaos(ChaosConfig::new(7));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let g = labeled(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert_eq!(m.planned_fault(&q, &g), None);
        assert!(m.filter(&q, &g, Deadline::none()).is_ok());
    }

    #[test]
    fn timeout_fault_surfaces_as_err() {
        // Rate 1000‰: every pair faults.
        let m = chaos(ChaosConfig::new(7).with_timeouts(1000));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let g = labeled(&[0, 1], &[(0, 1)]);
        assert_eq!(m.planned_fault(&q, &g), Some(FaultKind::Timeout));
        assert!(matches!(m.filter(&q, &g, Deadline::none()), Err(Timeout)));
    }

    #[test]
    fn exhaust_fault_trips_the_guard() {
        use sqp_matching::{ResourceGuard, ResourceLimits};
        let m = chaos(ChaosConfig::new(7).with_exhaustion(1000));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let g = labeled(&[0, 1], &[(0, 1)]);
        let guard = ResourceGuard::new();
        guard.reset(ResourceLimits::unlimited());
        let d = Deadline::none().with_guard(guard);
        assert!(matches!(m.filter(&q, &g, d), Err(Timeout)));
        assert_eq!(guard.tripped(), Some(ResourceKind::Steps));
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_fault_panics() {
        let m = chaos(ChaosConfig::new(7).with_panics(1000));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let g = labeled(&[0, 1], &[(0, 1)]);
        let _ = m.filter(&q, &g, Deadline::none());
    }

    #[test]
    #[should_panic(expected = "fault rates exceed")]
    fn over_1000_per_mille_rejected() {
        let _ = chaos(ChaosConfig::new(7).with_panics(600).with_timeouts(600));
    }

    #[test]
    fn update_stream_is_deterministic_and_valid() {
        use sqp_graph::DynamicGraph;
        let base = labeled(&[0, 1, 0, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for profile in [
            StreamProfile::Mixed,
            StreamProfile::AddHeavy,
            StreamProfile::RemoveHeavy,
            StreamProfile::Churn,
        ] {
            let mut a = UpdateStreamGen::new(&base, 99, profile);
            let mut b = UpdateStreamGen::new(&base, 99, profile);
            let mut g = DynamicGraph::new(base.clone());
            for round in 0..20 {
                let batch = a.batch(6);
                assert_eq!(batch, b.batch(6), "stream not deterministic ({profile:?})");
                let fx = g
                    .apply_batch(&batch)
                    .unwrap_or_else(|e| panic!("{profile:?} round {round}: {e}"));
                assert!(fx.applied <= batch.len());
                // Mirror stays faithful to the overlay.
                assert_eq!(g.live_vertex_count(), a.live_count(), "{profile:?} round {round}");
                assert_eq!(g.edge_count(), a.edge_count(), "{profile:?} round {round}");
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base = labeled(&[0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]);
        let mut a = UpdateStreamGen::new(&base, 1, StreamProfile::Mixed);
        let mut b = UpdateStreamGen::new(&base, 2, StreamProfile::Mixed);
        let sa: Vec<Vec<Update>> = (0..8).map(|_| a.batch(5)).collect();
        let sb: Vec<Vec<Update>> = (0..8).map(|_| b.batch(5)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn malformed_batches_fail_closed() {
        use sqp_graph::DynamicGraph;
        let base = labeled(&[0, 1, 0, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut gen = UpdateStreamGen::new(&base, 7, StreamProfile::Mixed);
        let mut g = DynamicGraph::new(base);
        // Advance a few rounds so tombstones exist, then try every
        // malformed case against the same state.
        for _ in 0..10 {
            g.apply_batch(&gen.batch(5)).unwrap();
        }
        let cases = gen.malformed_batches();
        assert!(cases.len() >= 5, "expected a full malformed case set, got {}", cases.len());
        for case in cases {
            let before = (g.live_vertex_count(), g.edge_count(), g.delta_ops());
            let err = g.apply_batch(&case).expect_err("malformed batch accepted");
            let _ = err.to_string(); // display must not panic
            let after = (g.live_vertex_count(), g.edge_count(), g.delta_ops());
            assert_eq!(before, after, "rejected batch mutated the overlay");
        }
    }

    #[test]
    fn rates_land_near_target() {
        // With 1000 distinct pairs and a 20% total rate, the injected count
        // should be within a loose band around 200.
        let graphs: Vec<Graph> = (0..1000)
            .map(|i| labeled(&[i % 7, (i + 1) % 7, (i + 3) % 7], &[(0, 1), (1, 2)]))
            .collect();
        // Distinct structures: vary edges too.
        let q = labeled(&[0, 1], &[(0, 1)]);
        let m =
            chaos(ChaosConfig::new(1234).with_panics(100).with_timeouts(50).with_exhaustion(50));
        let faulted = graphs.iter().filter(|g| m.planned_fault(&q, g).is_some()).count();
        // 21 distinct structures only (labels mod 7), so the count is coarse;
        // just require the mechanism neither fires always nor never.
        assert!(faulted > 0);
        assert!(faulted < graphs.len());
    }
}
