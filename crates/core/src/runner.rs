//! Running query sets against engines.

use std::time::Duration;

use sqp_graph::Graph;

use crate::engine::QueryEngine;
use crate::metrics::{QueryRecord, QuerySetReport};

/// Configuration of a query-set run.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Per-query time budget (the paper: 10 minutes). `None` = unlimited.
    pub query_budget: Option<Duration>,
    /// Stop early once this many queries timed out — the paper omits a
    /// query set after 40% failures, so burning the full budget on every
    /// remaining query is pointless. `None` = never stop early.
    pub abort_after_timeouts: Option<usize>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self { query_budget: Some(Duration::from_secs(600)), abort_after_timeouts: None }
    }
}

impl RunnerConfig {
    /// A configuration with the given per-query budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self { query_budget: Some(budget), ..Self::default() }
    }
}

/// Runs `queries` against a built engine, producing a [`QuerySetReport`].
///
/// The engine must already have been [`build`](QueryEngine::build)-ed.
pub fn run_query_set(
    engine: &mut dyn QueryEngine,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
) -> QuerySetReport {
    engine.set_query_budget(config.query_budget);
    let mut report = QuerySetReport::new(engine.name(), query_set_name);
    for q in queries {
        let outcome = engine.query(q);
        report.records.push(QueryRecord::from_outcome(&outcome, config.query_budget));
        if let Some(max) = config.abort_after_timeouts {
            if report.timeout_count() >= max {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CfqlEngine;
    use std::sync::Arc;

    use sqp_graph::{GraphBuilder, GraphDb, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    #[test]
    fn runs_all_queries() {
        let db = Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        let queries = vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[1, 2], &[(0, 1)])];
        let report =
            run_query_set(&mut engine, "Q1S", &queries, RunnerConfig::default());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.engine, "CFQL");
        assert_eq!(report.query_set, "Q1S");
        assert_eq!(report.records[0].answers, 2);
        assert_eq!(report.records[1].answers, 1);
        assert_eq!(report.timeout_count(), 0);
    }

    #[test]
    fn abort_after_timeouts_stops_early() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0], &[])]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        // Zero budget: every query times out immediately (deadline checked
        // at filter entry).
        let config = RunnerConfig {
            query_budget: Some(Duration::from_nanos(0)),
            abort_after_timeouts: Some(1),
        };
        let queries = vec![labeled(&[0], &[]); 10];
        let report = run_query_set(&mut engine, "Q", &queries, config);
        assert!(report.records.len() < 10);
    }
}
