//! Running query sets against engines, with per-query fault isolation, a
//! bounded retry-with-backoff policy for transient panics, and optional
//! crash-consistent journaling for kill-and-resume runs.

use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqp_graph::hash::FxHasher;
use sqp_graph::{Graph, GraphDb};
use sqp_matching::{Deadline, Matcher, ResourceLimits};

use crate::chaos::graph_fingerprint;
use crate::engine::{QueryEngine, QueryOutcome};
use crate::journal::RunJournal;
use crate::metrics::{QueryRecord, QuerySetReport};
use crate::parallel::{panic_message, QueryPool};

/// Configuration of a query-set run.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Per-query time budget (the paper: 10 minutes). `None` = unlimited.
    pub query_budget: Option<Duration>,
    /// Stop early once this many queries timed out — the paper omits a
    /// query set after 40% failures, so burning the full budget on every
    /// remaining query is pointless. `None` = never stop early. Only
    /// wall-clock timeouts count; panics and resource exhaustion do not.
    pub abort_after_timeouts: Option<usize>,
    /// How many times to re-run a *panicked* query before recording the
    /// failure (transient faults: a poisoned cache line, an injected chaos
    /// fault that moves). Timeouts and resource exhaustion are
    /// deterministic under a fixed budget, so they are never retried.
    pub max_retries: u32,
    /// Backoff before the first retry, doubling per attempt.
    pub retry_backoff: Duration,
    /// Per-query resource budgets (enumeration steps / auxiliary bytes).
    pub limits: ResourceLimits,
    /// Seed for deterministic backoff jitter (0 = no jitter). The runners
    /// set it per query from the query's [`graph_fingerprint`], spreading a
    /// pool of simultaneously retrying queries over up to +50% of the base
    /// backoff instead of thundering-herding on the same instant, while
    /// keeping every run bit-reproducible.
    pub jitter_seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            query_budget: Some(Duration::from_secs(600)),
            abort_after_timeouts: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(10),
            limits: ResourceLimits::unlimited(),
            jitter_seed: 0,
        }
    }
}

impl RunnerConfig {
    /// A configuration with the given per-query budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self { query_budget: Some(budget), ..Self::default() }
    }

    /// A configuration with the given retry policy.
    pub fn with_retries(max_retries: u32) -> Self {
        Self { max_retries, ..Self::default() }
    }

    /// This configuration with the jitter seed set (typically a query
    /// fingerprint; see [`RunnerConfig::jitter_seed`]).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// Deterministic backoff jitter: stretches `base` by up to +50%, as a pure
/// function of `(seed, attempt)`. Seed 0 disables jitter.
pub(crate) fn jittered(base: Duration, seed: u64, attempt: u32) -> Duration {
    if seed == 0 || base.is_zero() {
        return base;
    }
    let mut h = FxHasher::default();
    seed.hash(&mut h);
    attempt.hash(&mut h);
    let frac = h.finish() % 1024; // extra = base/2 × frac/1024
    let extra_nanos = (base.as_nanos() as u64 / 2048).saturating_mul(frac);
    base + Duration::from_nanos(extra_nanos)
}

/// Runs one query through `attempt`, retrying panicked outcomes up to
/// `config.max_retries` times with doubling backoff. Returns the final
/// outcome and the number of retries spent.
///
/// Every attempt — and every backoff sleep between attempts — is charged
/// against the *same* per-query budget: `attempt` receives the remaining
/// slice of `config.query_budget` (`None` = unlimited), backoff sleeps are
/// clipped to what is left, and retrying stops outright once the budget is
/// spent. Retries can therefore never extend a query's wall clock past the
/// configured budget.
pub(crate) fn run_with_retries(
    config: RunnerConfig,
    mut attempt: impl FnMut(Option<Duration>) -> QueryOutcome,
) -> (QueryOutcome, u32) {
    let start = Instant::now();
    let remaining = |start: Instant| config.query_budget.map(|b| b.saturating_sub(start.elapsed()));
    let mut outcome = attempt(remaining(start));
    let mut retries = 0;
    let mut backoff = config.retry_backoff;
    while outcome.status.is_panicked() && retries < config.max_retries {
        // Deterministic per-(query, attempt) jitter so a pool of queries
        // retrying the same transient fault spreads out instead of
        // thundering-herding on the same instant.
        let sleep = jittered(backoff, config.jitter_seed, retries);
        match remaining(start) {
            Some(left) if left.is_zero() => break,
            Some(left) => {
                if !sleep.is_zero() {
                    std::thread::sleep(sleep.min(left));
                }
            }
            None => {
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
        backoff = backoff.saturating_mul(2);
        retries += 1;
        outcome = attempt(remaining(start));
    }
    (outcome, retries)
}

/// Runs `queries` against a built engine, producing a [`QuerySetReport`].
///
/// The engine must already have been [`build`](QueryEngine::build)-ed.
/// Each query is individually guarded: a panic that escapes the engine is
/// caught here and recorded as one degraded [`QueryRecord`] — every other
/// query in the set still runs and keeps its exact answers.
pub fn run_query_set(
    engine: &mut dyn QueryEngine,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
) -> QuerySetReport {
    run_query_set_journaled(engine, query_set_name, queries, config, None)
}

/// [`run_query_set`] with an optional crash-consistent [`RunJournal`]:
/// queries the journal already holds a terminal (non-shed) outcome for are
/// skipped (counted in the journal's stats, absent from the report), and
/// every outcome produced here is appended to the journal as the query
/// finishes — so a killed run resumes where it died.
pub fn run_query_set_journaled(
    engine: &mut dyn QueryEngine,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
    mut journal: Option<&mut RunJournal>,
) -> QuerySetReport {
    engine.set_resource_limits(config.limits);
    let mut report = QuerySetReport::new(engine.name(), query_set_name);
    for q in queries {
        let q_fp = graph_fingerprint(q);
        if let Some(j) = journal.as_deref_mut() {
            if j.should_skip(q_fp) {
                continue;
            }
        }
        let config = config.with_jitter_seed(q_fp);
        let (outcome, retries) = run_with_retries(config, |remaining| {
            // Retry attempts see only the budget slice that is left.
            engine.set_query_budget(remaining);
            match catch_unwind(AssertUnwindSafe(|| engine.query(q))) {
                Ok(outcome) => outcome,
                Err(payload) => QueryOutcome::panicked(panic_message(payload)),
            }
        });
        let served_by = if outcome.engine.is_empty() { engine.name() } else { &outcome.engine };
        if let Some(j) = journal.as_deref_mut() {
            // Journal I/O failure must not kill the run; the worst case is
            // re-running this query on resume.
            let _ = j.record(q_fp, &outcome.status, outcome.answers.len(), served_by);
        }
        let mut record = QueryRecord::from_outcome(&outcome, config.query_budget)
            .with_engine_fallback(engine.name());
        record.retries = retries;
        report.records.push(record);
        if let Some(max) = config.abort_after_timeouts {
            if report.timeout_count() >= max {
                break;
            }
        }
    }
    report
}

/// Runs `queries` against `matcher` as a vcFV engine on `pool`'s persistent
/// workers, producing a [`QuerySetReport`].
///
/// Answers are identical to the sequential [`run_query_set`] on the
/// corresponding vcFV engine (invariant I4); the recorded per-phase times are
/// summed worker CPU times, so a parallel run's `avg_query_ms` measures work,
/// not latency (see `DESIGN.md` §2.4). Timed-out queries cancel all workers
/// cooperatively and are recorded at exactly the budget. The pool already
/// isolates panics per (query, graph) pair; panicked queries are retried per
/// `config.max_retries`.
pub fn run_query_set_parallel(
    pool: &QueryPool,
    matcher: Arc<dyn Matcher>,
    db: &Arc<GraphDb>,
    engine_name: &str,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
) -> QuerySetReport {
    run_query_set_parallel_journaled(
        pool,
        matcher,
        db,
        engine_name,
        query_set_name,
        queries,
        config,
        None,
    )
}

/// [`run_query_set_parallel`] with an optional [`RunJournal`] — same skip and
/// append-on-completion semantics as [`run_query_set_journaled`].
#[allow(clippy::too_many_arguments)]
pub fn run_query_set_parallel_journaled(
    pool: &QueryPool,
    matcher: Arc<dyn Matcher>,
    db: &Arc<GraphDb>,
    engine_name: &str,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
    mut journal: Option<&mut RunJournal>,
) -> QuerySetReport {
    let mut report = QuerySetReport::new(engine_name, query_set_name);
    let guard = sqp_matching::ResourceGuard::new();
    for q in queries {
        let q_fp = graph_fingerprint(q);
        if let Some(j) = journal.as_deref_mut() {
            if j.should_skip(q_fp) {
                continue;
            }
        }
        let config = config.with_jitter_seed(q_fp);
        let (outcome, retries) = run_with_retries(config, |remaining| {
            guard.reset(config.limits);
            let deadline = remaining.map_or(Deadline::none(), Deadline::after).with_guard(guard);
            pool.query(Arc::clone(&matcher), db, q, deadline).outcome
        });
        let served_by = if outcome.engine.is_empty() { engine_name } else { &outcome.engine };
        if let Some(j) = journal.as_deref_mut() {
            let _ = j.record(q_fp, &outcome.status, outcome.answers.len(), served_by);
        }
        let mut record = QueryRecord::from_outcome(&outcome, config.query_budget)
            .with_engine_fallback(engine_name);
        record.retries = retries;
        report.records.push(record);
        if let Some(max) = config.abort_after_timeouts {
            if report.timeout_count() >= max {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryStatus;
    use crate::engines::CfqlEngine;
    use sqp_matching::cfql::Cfql;

    use sqp_graph::{GraphBuilder, GraphDb, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    #[test]
    fn runs_all_queries() {
        let db = Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        let queries = vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[1, 2], &[(0, 1)])];
        let report = run_query_set(&mut engine, "Q1S", &queries, RunnerConfig::default());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.engine, "CFQL");
        assert_eq!(report.query_set, "Q1S");
        assert_eq!(report.records[0].answers, 2);
        assert_eq!(report.records[1].answers, 1);
        assert_eq!(report.timeout_count(), 0);
        assert_eq!(report.panic_count(), 0);
        assert_eq!(report.total_retries(), 0);
    }

    #[test]
    fn abort_after_timeouts_stops_early() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0], &[])]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        // Zero budget: every query times out immediately (deadline checked
        // at filter entry).
        let config = RunnerConfig {
            query_budget: Some(Duration::from_nanos(0)),
            abort_after_timeouts: Some(1),
            ..RunnerConfig::default()
        };
        let queries = vec![labeled(&[0], &[]); 10];
        let report = run_query_set(&mut engine, "Q", &queries, config);
        assert!(report.records.len() < 10);
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let db = Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
            labeled(&[2, 2], &[(0, 1)]),
        ]));
        let queries = vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[1, 2], &[(0, 1)])];

        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        let seq = run_query_set(&mut engine, "Q", &queries, RunnerConfig::default());

        let pool = QueryPool::new(4);
        let par = run_query_set_parallel(
            &pool,
            Arc::new(Cfql::new()),
            &db,
            "CFQL-par",
            "Q",
            &queries,
            RunnerConfig::default(),
        );
        assert_eq!(par.engine, "CFQL-par");
        assert_eq!(par.records.len(), seq.records.len());
        for (s, p) in seq.records.iter().zip(par.records.iter()) {
            assert_eq!(s.answers, p.answers);
            assert_eq!(s.candidates, p.candidates);
            assert_eq!(s.status, p.status);
        }
    }

    #[test]
    fn parallel_zero_budget_records_timeouts_at_budget() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)]); 4]));
        let pool = QueryPool::new(2);
        let budget = Duration::from_nanos(0);
        let report = run_query_set_parallel(
            &pool,
            Arc::new(Cfql::new()),
            &db,
            "CFQL-par",
            "Q",
            &[labeled(&[0, 1], &[(0, 1)])],
            RunnerConfig::with_budget(budget),
        );
        assert_eq!(report.timeout_count(), 1);
        assert_eq!(report.records[0].query_time(), budget);
    }

    /// An engine whose `query` panics the first `fail_times` calls, then
    /// succeeds — exercises the retry-with-backoff path.
    struct FlakyEngine {
        inner: CfqlEngine,
        remaining_failures: std::cell::Cell<u32>,
    }

    impl QueryEngine for FlakyEngine {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn category(&self) -> crate::engine::EngineCategory {
            self.inner.category()
        }
        fn build(
            &mut self,
            db: &Arc<GraphDb>,
        ) -> Result<crate::engine::BuildReport, sqp_index::BuildError> {
            self.inner.build(db)
        }
        fn query(&self, q: &Graph) -> QueryOutcome {
            let left = self.remaining_failures.get();
            if left > 0 {
                self.remaining_failures.set(left - 1);
                panic!("transient fault");
            }
            self.inner.query(q)
        }
        fn set_query_budget(&mut self, budget: Option<Duration>) {
            self.inner.set_query_budget(budget);
        }
        fn index_bytes(&self) -> usize {
            self.inner.index_bytes()
        }
    }

    #[test]
    fn sequential_runner_survives_engine_panic() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let mut engine =
            FlakyEngine { inner: CfqlEngine::new(), remaining_failures: std::cell::Cell::new(1) };
        engine.build(&db).unwrap();
        let queries = vec![labeled(&[0, 1], &[(0, 1)]); 3];
        // No retries: the first query records the panic, the rest complete.
        let report = run_query_set(&mut engine, "Q", &queries, RunnerConfig::default());
        assert_eq!(report.records.len(), 3);
        assert!(report.records[0].status.is_panicked());
        assert_eq!(report.records[0].answers, 0);
        assert!(report.records[1].status.is_completed());
        assert_eq!(report.records[1].answers, 1);
        assert_eq!(report.panic_count(), 1);
    }

    #[test]
    fn retry_recovers_transient_panic() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let mut engine =
            FlakyEngine { inner: CfqlEngine::new(), remaining_failures: std::cell::Cell::new(2) };
        engine.build(&db).unwrap();
        let config = RunnerConfig {
            max_retries: 3,
            retry_backoff: Duration::ZERO,
            ..RunnerConfig::default()
        };
        let report = run_query_set(&mut engine, "Q", &[labeled(&[0, 1], &[(0, 1)])], config);
        assert_eq!(report.records.len(), 1);
        assert!(report.records[0].status.is_completed(), "{:?}", report.records[0].status);
        assert_eq!(report.records[0].answers, 1);
        assert_eq!(report.records[0].retries, 2);
        assert_eq!(report.total_retries(), 2);
        assert_eq!(report.panic_count(), 0);
    }

    #[test]
    fn retries_exhausted_records_panic() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let mut engine = FlakyEngine {
            inner: CfqlEngine::new(),
            remaining_failures: std::cell::Cell::new(u32::MAX),
        };
        engine.build(&db).unwrap();
        let config = RunnerConfig {
            max_retries: 2,
            retry_backoff: Duration::ZERO,
            ..RunnerConfig::default()
        };
        let report = run_query_set(&mut engine, "Q", &[labeled(&[0, 1], &[(0, 1)])], config);
        assert!(report.records[0].status.is_panicked());
        assert_eq!(report.records[0].retries, 2);
    }

    #[test]
    fn abort_after_timeouts_ignores_panics() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let mut engine =
            FlakyEngine { inner: CfqlEngine::new(), remaining_failures: std::cell::Cell::new(2) };
        engine.build(&db).unwrap();
        let config = RunnerConfig { abort_after_timeouts: Some(1), ..RunnerConfig::default() };
        let queries = vec![labeled(&[0, 1], &[(0, 1)]); 4];
        let report = run_query_set(&mut engine, "Q", &queries, config);
        // Two panics, zero timeouts: the abort threshold never fires.
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.panic_count(), 2);
        assert_eq!(report.timeout_count(), 0);
    }

    #[test]
    fn retries_are_charged_against_the_query_budget() {
        // Regression: retry attempts and backoff sleeps used to each get a
        // fresh budget, so a panicking query with a large retry count could
        // extend wall-clock far past `query_budget`.
        let config = RunnerConfig {
            query_budget: Some(Duration::from_millis(80)),
            max_retries: 1000,
            retry_backoff: Duration::from_millis(30),
            ..RunnerConfig::default()
        };
        let t0 = Instant::now();
        let (outcome, retries) =
            run_with_retries(config, |_| QueryOutcome::panicked("always".into()));
        let elapsed = t0.elapsed();
        assert!(outcome.status.is_panicked());
        // 30 + 60 = 90ms of backoff alone exceeds the 80ms budget, so at
        // most two retries fit; with the old per-attempt budget this would
        // have slept for minutes. Generous bound for slow CI machines.
        assert!(retries <= 3, "retries not bounded by budget: {retries}");
        assert!(elapsed < Duration::from_secs(2), "wall clock escaped the budget: {elapsed:?}");
    }

    #[test]
    fn retry_attempts_see_a_shrinking_budget() {
        let config = RunnerConfig {
            query_budget: Some(Duration::from_millis(200)),
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
            ..RunnerConfig::default()
        };
        let seen = std::cell::RefCell::new(Vec::new());
        let (_, retries) = run_with_retries(config, |remaining| {
            seen.borrow_mut().push(remaining.expect("budget configured"));
            QueryOutcome::panicked("always".into())
        });
        let seen = seen.into_inner();
        assert_eq!(retries as usize + 1, seen.len());
        assert!(seen[0] <= Duration::from_millis(200));
        for pair in seen.windows(2) {
            assert!(pair[1] < pair[0], "remaining budget must shrink: {seen:?}");
        }
    }

    #[test]
    fn unlimited_budget_still_retries() {
        let config = RunnerConfig {
            query_budget: None,
            max_retries: 2,
            retry_backoff: Duration::ZERO,
            ..RunnerConfig::default()
        };
        let calls = std::cell::Cell::new(0u32);
        let (outcome, retries) = run_with_retries(config, |remaining| {
            assert!(remaining.is_none());
            calls.set(calls.get() + 1);
            QueryOutcome::panicked("always".into())
        });
        assert_eq!(calls.get(), 3);
        assert_eq!(retries, 2);
        assert!(outcome.status.is_panicked());
    }

    #[test]
    fn resource_limits_surface_as_exhausted() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)]); 6]));
        let pool = QueryPool::new(2);
        let config = RunnerConfig {
            limits: ResourceLimits::unlimited().with_max_aux_bytes(1),
            ..RunnerConfig::default()
        };
        let report = run_query_set_parallel(
            &pool,
            Arc::new(Cfql::new()),
            &db,
            "CFQL-par",
            "Q",
            &[labeled(&[0, 1], &[(0, 1)])],
            config,
        );
        assert_eq!(report.exhausted_count(), 1);
        assert_eq!(report.timeout_count(), 0);
        assert!(matches!(report.records[0].status, QueryStatus::ResourceExhausted { .. }));
    }
}
