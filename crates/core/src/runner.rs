//! Running query sets against engines.

use std::sync::Arc;
use std::time::Duration;

use sqp_graph::{Graph, GraphDb};
use sqp_matching::{Deadline, Matcher};

use crate::engine::QueryEngine;
use crate::metrics::{QueryRecord, QuerySetReport};
use crate::parallel::QueryPool;

/// Configuration of a query-set run.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Per-query time budget (the paper: 10 minutes). `None` = unlimited.
    pub query_budget: Option<Duration>,
    /// Stop early once this many queries timed out — the paper omits a
    /// query set after 40% failures, so burning the full budget on every
    /// remaining query is pointless. `None` = never stop early.
    pub abort_after_timeouts: Option<usize>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self { query_budget: Some(Duration::from_secs(600)), abort_after_timeouts: None }
    }
}

impl RunnerConfig {
    /// A configuration with the given per-query budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self { query_budget: Some(budget), ..Self::default() }
    }
}

/// Runs `queries` against a built engine, producing a [`QuerySetReport`].
///
/// The engine must already have been [`build`](QueryEngine::build)-ed.
pub fn run_query_set(
    engine: &mut dyn QueryEngine,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
) -> QuerySetReport {
    engine.set_query_budget(config.query_budget);
    let mut report = QuerySetReport::new(engine.name(), query_set_name);
    for q in queries {
        let outcome = engine.query(q);
        report.records.push(QueryRecord::from_outcome(&outcome, config.query_budget));
        if let Some(max) = config.abort_after_timeouts {
            if report.timeout_count() >= max {
                break;
            }
        }
    }
    report
}

/// Runs `queries` against `matcher` as a vcFV engine on `pool`'s persistent
/// workers, producing a [`QuerySetReport`].
///
/// Answers are identical to the sequential [`run_query_set`] on the
/// corresponding vcFV engine (invariant I4); the recorded per-phase times are
/// summed worker CPU times, so a parallel run's `avg_query_ms` measures work,
/// not latency (see `DESIGN.md` §2.4). Timed-out queries cancel all workers
/// cooperatively and are recorded at exactly the budget.
pub fn run_query_set_parallel(
    pool: &QueryPool,
    matcher: Arc<dyn Matcher>,
    db: &Arc<GraphDb>,
    engine_name: &str,
    query_set_name: &str,
    queries: &[Graph],
    config: RunnerConfig,
) -> QuerySetReport {
    let mut report = QuerySetReport::new(engine_name, query_set_name);
    for q in queries {
        let deadline = config.query_budget.map_or(Deadline::none(), Deadline::after);
        let outcome = pool.query(Arc::clone(&matcher), db, q, deadline).outcome;
        report.records.push(QueryRecord::from_outcome(&outcome, config.query_budget));
        if let Some(max) = config.abort_after_timeouts {
            if report.timeout_count() >= max {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::CfqlEngine;
    use sqp_matching::cfql::Cfql;

    use sqp_graph::{GraphBuilder, GraphDb, Label, VertexId};

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    #[test]
    fn runs_all_queries() {
        let db = Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        let queries = vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[1, 2], &[(0, 1)])];
        let report = run_query_set(&mut engine, "Q1S", &queries, RunnerConfig::default());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.engine, "CFQL");
        assert_eq!(report.query_set, "Q1S");
        assert_eq!(report.records[0].answers, 2);
        assert_eq!(report.records[1].answers, 1);
        assert_eq!(report.timeout_count(), 0);
    }

    #[test]
    fn abort_after_timeouts_stops_early() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0], &[])]));
        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        // Zero budget: every query times out immediately (deadline checked
        // at filter entry).
        let config = RunnerConfig {
            query_budget: Some(Duration::from_nanos(0)),
            abort_after_timeouts: Some(1),
        };
        let queries = vec![labeled(&[0], &[]); 10];
        let report = run_query_set(&mut engine, "Q", &queries, config);
        assert!(report.records.len() < 10);
    }

    #[test]
    fn parallel_report_matches_sequential() {
        let db = Arc::new(GraphDb::from_graphs(vec![
            labeled(&[0, 1], &[(0, 1)]),
            labeled(&[0, 1, 2], &[(0, 1), (1, 2)]),
            labeled(&[2, 2], &[(0, 1)]),
        ]));
        let queries = vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[1, 2], &[(0, 1)])];

        let mut engine = CfqlEngine::new();
        engine.build(&db).unwrap();
        let seq = run_query_set(&mut engine, "Q", &queries, RunnerConfig::default());

        let pool = QueryPool::new(4);
        let par = run_query_set_parallel(
            &pool,
            Arc::new(Cfql::new()),
            &db,
            "CFQL-par",
            "Q",
            &queries,
            RunnerConfig::default(),
        );
        assert_eq!(par.engine, "CFQL-par");
        assert_eq!(par.records.len(), seq.records.len());
        for (s, p) in seq.records.iter().zip(par.records.iter()) {
            assert_eq!(s.answers, p.answers);
            assert_eq!(s.candidates, p.candidates);
            assert_eq!(s.timed_out, p.timed_out);
        }
    }

    #[test]
    fn parallel_zero_budget_records_timeouts_at_budget() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)]); 4]));
        let pool = QueryPool::new(2);
        let budget = Duration::from_nanos(0);
        let report = run_query_set_parallel(
            &pool,
            Arc::new(Cfql::new()),
            &db,
            "CFQL-par",
            "Q",
            &[labeled(&[0, 1], &[(0, 1)])],
            RunnerConfig::with_budget(budget),
        );
        assert_eq!(report.timeout_count(), 1);
        assert_eq!(report.records[0].query_time(), budget);
    }
}
