//! The watchdog over query execution: heartbeat scanning, wedged-worker
//! escalation, and worker replacement.
//!
//! Cooperative cancellation (PR 2) only works when the matcher cooperates:
//! a matcher that loops without ever ticking its [`Deadline`] wedges a
//! [`QueryPool`] worker forever, which blocks the submitting thread, the
//! serving executor above it, and ultimately [`QueryService::shutdown`]'s
//! drain guarantee. The per-engine cost spread documented in *Deep Analysis
//! on Subgraph Isomorphism* (PAPERS.md) makes such pathological queries the
//! norm at scale, not the exception — so the pool needs a non-cooperative
//! escape hatch.
//!
//! # Heartbeat protocol
//!
//! Every [`Deadline::check`] — already on every hot-path tick — stamps a
//! per-worker-slot [`Heartbeat`] (one relaxed atomic store, nanosecond
//! timestamp). The supervisor thread spawned by
//! [`QueryPool::supervised`] scans the slots every
//! [`scan_interval`](SupervisorConfig::scan_interval) and escalates a worker
//! only when **all** of the following hold:
//!
//! 1. a job is in flight and the worker's slot is busy on it,
//! 2. the job has a wall deadline and it is overdue by at least
//!    [`grace`](SupervisorConfig::grace) (unbudgeted queries are never
//!    escalated — without a budget there is no "overdue"),
//! 3. the slot's heartbeat is older than
//!    [`stale_after`](SupervisorConfig::stale_after) (a ticking-but-late
//!    worker is merely slow; cancellation will stop it cooperatively).
//!
//! # Escalation ladder
//!
//! Escalation, performed atomically under the pool's state lock: fire the
//! job's cancel token (a revived worker self-terminates at its next check),
//! record a [`QueryStatus::Wedged`] failure for the graph the worker was
//! grinding on, bump the slot's generation so a late commit from the
//! abandoned thread is ignored, detach its `JoinHandle` (a truly wedged
//! thread can never be joined), spawn a replacement worker into the same
//! slot so the pool keeps full capacity, and finish the abandoned worker's
//! shard accounting so the submitter — and therefore any drain — always
//! terminates. A wedged query resolves like a timeout: partial answers plus
//! an attributed per-graph failure, with outcome-level status `Wedged`.
//!
//! [`Deadline`]: sqp_matching::Deadline
//! [`Deadline::check`]: sqp_matching::Deadline::check
//! [`Heartbeat`]: sqp_matching::Heartbeat
//! [`QueryPool`]: crate::parallel::QueryPool
//! [`QueryPool::supervised`]: crate::parallel::QueryPool::supervised
//! [`QueryService::shutdown`]: crate::service::QueryService::shutdown
//! [`QueryStatus::Wedged`]: crate::engine::QueryStatus::Wedged

use std::sync::Arc;
use std::time::Duration;

use crate::parallel::PoolShared;

/// Watchdog policy for a supervised [`QueryPool`](crate::parallel::QueryPool).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Extra time past the query's wall deadline before escalation is even
    /// considered. Keeps the watchdog out of the way of ordinary
    /// cooperative-cancellation latency (one `TickChecker` interval).
    pub grace: Duration,
    /// How often the supervisor thread scans the worker slots.
    pub scan_interval: Duration,
    /// A busy worker whose last heartbeat is older than this is considered
    /// stuck. Must comfortably exceed the longest legitimate gap between
    /// `Deadline::check` calls (one graph's filter tick interval).
    pub stale_after: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            grace: Duration::from_millis(200),
            scan_interval: Duration::from_millis(20),
            stale_after: Duration::from_millis(200),
        }
    }
}

/// Body of the supervisor thread: scan, sleep, repeat until pool shutdown.
pub(crate) fn supervisor_loop(shared: Arc<PoolShared>, config: SupervisorConfig) {
    shared.run_supervisor(&config);
}
