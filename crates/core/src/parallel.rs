//! Parallel vcFV query processing.
//!
//! Grapes exploits multi-core machines during both indexing and querying
//! (§III-A); the vcFV framework parallelizes even more naturally, since each
//! data graph's filter+verify is independent. This module provides two
//! strategies:
//!
//! * [`QueryPool`] — the production layer: persistent worker threads shared
//!   across queries (no per-query spawn), dynamic work distribution through
//!   a shared atomic counter over graph ids (a degenerate but contention-free
//!   form of work stealing: idle workers "steal" the next unclaimed graph),
//!   and cooperative cancellation so that when any worker exhausts the
//!   budget every sibling stops within one [`TickChecker`] interval.
//! * [`parallel_query`] — the original per-query-spawn, contiguous-chunk
//!   fan-out, kept as the static-partitioning baseline the benches compare
//!   against. Under skewed graph-size distributions (the PPI profile) static
//!   chunks leave straggler threads running alone while the rest idle.
//!
//! Timing semantics: per-phase times are summed across workers (CPU time),
//! while [`ParallelOutcome::wall_time`] reports the end-to-end latency — the
//! number a user of a multi-core deployment cares about. A timed-out
//! parallel query can therefore record summed CPU time *below* the budget
//! (workers stop early on cancellation); `QueryRecord::from_outcome` pins
//! such queries to exactly the budget, as the paper records timeouts at the
//! limit.
//!
//! Invariant I4: for queries that complete within the budget, answers and
//! candidate counts are identical to the sequential engine's for every
//! thread count — the only difference is timing.
//!
//! Fault isolation (invariant I8): matcher calls are wrapped in
//! `catch_unwind` *per (query, graph) pair*, so a poisoned pair yields one
//! [`GraphFailure`] in the outcome while every other graph's answer — and
//! every sibling query — is preserved. The worker-shard `catch_unwind` in
//! [`worker_loop`] remains only as an infrastructure backstop; it no longer
//! discards the worker's completed partial results, and the submitter never
//! re-panics.
//!
//! [`TickChecker`]: sqp_matching::deadline::TickChecker

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb, HeapSize};
use sqp_matching::obs::{Phase, Span};
use sqp_matching::{CancelToken, Deadline, FilterResult, Heartbeat, Matcher, StatsSink};

use crate::engine::{QueryOutcome, QueryStatus};
use crate::supervisor::{supervisor_loop, SupervisorConfig};

/// Locks a mutex, tolerating poisoning: a panicking worker must never deny
/// the submitter (or its siblings) access to the partial results.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload for a [`QueryStatus::Panicked`] message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of a parallel query.
#[derive(Clone, Debug, Default)]
pub struct ParallelOutcome {
    /// The sequential-equivalent outcome (answers sorted by graph id; times
    /// are summed worker CPU times).
    pub outcome: QueryOutcome,
    /// End-to-end latency of the parallel pass.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs one graph's filter+verify, folding the result into `part`.
/// Returns `false` when the worker should stop (timeout, cancellation, or a
/// tripped resource budget).
///
/// Both matcher calls are individually wrapped in `catch_unwind`: a panic on
/// this (query, graph) pair becomes one [`GraphFailure`] and processing
/// *continues* with the next graph, so all non-panicking pairs keep their
/// exact answers (invariant I8).
#[inline]
pub(crate) fn process_graph(
    matcher: &dyn Matcher,
    db: &GraphDb,
    q: &Graph,
    gid: GraphId,
    deadline: Deadline,
    part: &mut QueryOutcome,
) -> bool {
    let g = db.graph(gid);
    // The stage spans wrap the panic guard and dispatch so the per-phase sum
    // accounts for the harness overhead too; nested matcher spans subtract
    // their time from these outer spans (self-time accounting), so nothing
    // is double-counted. When a sink is live the span's own clock reads
    // double as the stage wall measurement — per pair, timing machinery is
    // comparable to a pruned filter's work, so paying for a second timer
    // would make the phase sum and the wall time drift apart.
    let timed = deadline.stats().is_some();
    let tf = Instant::now();
    let stage_span = Span::enter(Phase::Filter, deadline);
    let filtered = catch_unwind(AssertUnwindSafe(|| matcher.filter(q, g, deadline)));
    let spanned = stage_span.finish();
    part.filter_time += if timed { Duration::from_nanos(spanned) } else { tf.elapsed() };
    let filtered = match filtered {
        Ok(r) => r,
        Err(payload) => {
            part.record_panic(gid, panic_message(payload));
            return true;
        }
    };
    match filtered {
        Err(_) => {
            part.record_interrupt(gid, deadline);
            false
        }
        Ok(FilterResult::Pruned) => true,
        Ok(FilterResult::Space(space)) => {
            part.candidates += 1;
            let bytes = space.heap_size();
            part.aux_bytes = part.aux_bytes.max(bytes);
            deadline.guard().note_aux_bytes(bytes);
            if deadline.check().is_err() {
                // The candidate space itself blew the memory budget (or a
                // sibling expired the deadline while we built it).
                part.record_interrupt(gid, deadline);
                return false;
            }
            let tv = Instant::now();
            let stage_span = Span::enter(Phase::Enumerate, deadline);
            let verdict =
                catch_unwind(AssertUnwindSafe(|| matcher.find_first(q, g, &space, deadline)));
            let spanned = stage_span.finish();
            part.verify_time += if timed { Duration::from_nanos(spanned) } else { tv.elapsed() };
            match verdict {
                Err(payload) => {
                    part.record_panic(gid, panic_message(payload));
                    true
                }
                Ok(Ok(Some(_))) => {
                    part.answers.push(gid);
                    true
                }
                Ok(Ok(None)) => true,
                Ok(Err(_)) => {
                    part.record_interrupt(gid, deadline);
                    false
                }
            }
        }
    }
}

fn merge_parts(parts: Vec<QueryOutcome>) -> QueryOutcome {
    let mut merged = QueryOutcome::default();
    for part in parts {
        merged.answers.extend(part.answers);
        merged.candidates += part.candidates;
        merged.filter_time += part.filter_time;
        merged.verify_time += part.verify_time;
        merged.status.absorb(part.status);
        merged.failures.extend(part.failures);
        merged.aux_bytes = merged.aux_bytes.max(part.aux_bytes);
    }
    merged.answers.sort_unstable();
    merged.finalize();
    merged
}

// ---------------------------------------------------------------------------
// QueryPool: persistent workers + shared-counter distribution + cancellation
// ---------------------------------------------------------------------------

/// One in-flight parallel query, shared between the submitting thread and
/// the workers.
struct Job {
    matcher: Arc<dyn Matcher>,
    db: Arc<GraphDb>,
    q: Graph,
    deadline: Deadline,
    /// Next unclaimed graph id — the shared work counter. Claiming one graph
    /// at a time gives the finest-grained balance under skewed graph sizes;
    /// one `fetch_add` per graph is noise next to a filter+verify pass.
    next: AtomicUsize,
    /// Quarantine mask from the serving layer: `mask[i] == true` means graph
    /// `i`'s circuit breaker is open, so the worker claiming it records a
    /// [`QueryStatus::Quarantined`] failure instead of calling the matcher.
    mask: Option<Arc<[bool]>>,
    /// Per-worker partial outcomes.
    parts: Mutex<Vec<QueryOutcome>>,
    /// Workers that have not yet finished this job.
    remaining: AtomicUsize,
    /// First infrastructure panic that escaped the per-graph isolation (our
    /// own pool code, not a matcher); the submitter degrades the outcome
    /// instead of re-raising, and the worker's `parts` survive.
    panic_note: Mutex<Option<String>>,
    /// Set once by the supervisor when it escalates a worker on this job, so
    /// [`PoolShared::queries_wedged`] counts queries, not abandoned workers.
    wedged: AtomicBool,
}

impl Job {
    /// Runs one worker shard. `deadline` is this worker's view of the job
    /// deadline (with its slot heartbeat attached); `slot`/`my_gen` identify
    /// the worker so it can publish the graph it is grinding on and notice
    /// mid-job that the supervisor abandoned it.
    fn run_worker(
        &self,
        deadline: Deadline,
        slot: Option<&WorkerSlot>,
        my_gen: u64,
    ) -> QueryOutcome {
        let mut part = QueryOutcome::default();
        let n = self.db.len();
        loop {
            // An abandoned worker's shard was already accounted for by the
            // supervisor; stop promptly instead of burning budget that now
            // belongs to a replacement.
            if let Some(slot) = slot {
                if slot.generation.load(Ordering::Acquire) != my_gen {
                    break;
                }
            }
            // Re-check between graphs so cancellation raised by a sibling is
            // honored even when this worker's own matcher calls are short.
            if deadline.check().is_err() {
                part.status.absorb(QueryStatus::from_interrupt(deadline));
                break;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if let Some(slot) = slot {
                slot.busy_graph.store(i, Ordering::Relaxed);
            }
            let gid = GraphId(i as u32);
            if self.mask.as_ref().is_some_and(|m| m[i]) {
                // Short-circuit: the quarantined graph never reaches the
                // matcher; exactly one failure record per masked graph, so
                // the finalized outcome is thread-count independent.
                part.record_quarantined(gid);
                continue;
            }
            if !process_graph(&*self.matcher, &self.db, &self.q, gid, deadline, &mut part) {
                // This worker hit the budget: tell every sibling to stop.
                deadline.cancel_token().cancel();
                break;
            }
        }
        part
    }

    /// Runs one worker shard with the infrastructure backstop: a panic that
    /// escapes per-graph isolation is recorded in `panic_note` and siblings
    /// are cancelled. Returns the completed part, if any; the caller commits
    /// it (under the state lock, so an abandoned worker's part never leaks
    /// into a job the submitter is merging).
    fn run_worker_guarded(
        &self,
        deadline: Deadline,
        slot: Option<&WorkerSlot>,
        my_gen: u64,
    ) -> Option<QueryOutcome> {
        match catch_unwind(AssertUnwindSafe(|| self.run_worker(deadline, slot, my_gen))) {
            Ok(part) => Some(part),
            Err(payload) => {
                let mut note = lock(&self.panic_note);
                if note.is_none() {
                    *note = Some(panic_message(payload));
                }
                drop(note);
                // Unblock siblings still grinding on their graphs.
                deadline.cancel_token().cancel();
                None
            }
        }
    }
}

/// Per-worker supervision state, indexed like the worker threads. Lives for
/// the whole pool; replacement workers inherit the slot of the worker they
/// replace (same index, same thread name, bumped generation).
pub(crate) struct WorkerSlot {
    /// Stamped by every `Deadline::check` the worker performs.
    beat: Heartbeat,
    /// Bumped when the supervisor abandons this slot's worker; a worker
    /// whose generation no longer matches must not commit anything.
    generation: AtomicU64,
    /// Epoch of the job this slot's worker is currently running (0 = idle).
    busy_epoch: AtomicU64,
    /// Graph index the worker last claimed (`usize::MAX` = none yet).
    busy_graph: AtomicUsize,
}

impl WorkerSlot {
    fn new() -> Self {
        Self {
            beat: Heartbeat::new(),
            generation: AtomicU64::new(0),
            busy_epoch: AtomicU64::new(0),
            busy_graph: AtomicUsize::new(usize::MAX),
        }
    }
}

pub(crate) struct PoolState {
    job: Option<Arc<Job>>,
    /// Bumped once per submitted job so each worker runs each job once.
    epoch: u64,
    shutdown: bool,
}

pub(crate) struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    job_done: Condvar,
    /// One slot per worker index; `slots.len()` is the configured capacity.
    slots: Vec<WorkerSlot>,
    /// Live worker handles by slot. `None` when the slot's worker could not
    /// be (re)spawned or its handle was detached after abandonment.
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Workers currently serving jobs (spawn failures and failed
    /// replacements shrink it); sizes `Job::remaining`.
    live: AtomicUsize,
    /// Worker-thread name prefix, kept for naming replacement workers.
    prefix: String,
    /// Queries that had at least one worker escalated as wedged.
    queries_wedged: AtomicU64,
    /// Worker threads abandoned and successfully replaced.
    workers_replaced: AtomicU64,
}

impl PoolShared {
    /// Spawns (or respawns) the worker for slot `idx`. Returns whether the
    /// OS granted the thread; on success the handle is stored and the live
    /// count incremented.
    fn spawn_worker(self: &Arc<Self>, idx: usize, generation: u64, start_epoch: u64) -> bool {
        let shared = Arc::clone(self);
        match std::thread::Builder::new()
            .name(format!("{}-{idx}", self.prefix))
            .spawn(move || worker_loop(&shared, idx, generation, start_epoch))
        {
            Ok(handle) => {
                lock(&self.handles)[idx] = Some(handle);
                self.live.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Supervisor thread body: scan the slots, wait out the scan interval
    /// (the shutdown notification on `work_ready` wakes it early), repeat.
    pub(crate) fn run_supervisor(self: &Arc<Self>, config: &SupervisorConfig) {
        let mut state = lock(&self.state);
        loop {
            if state.shutdown {
                return;
            }
            self.scan_for_wedged(&state, config);
            let (s, _) = self
                .work_ready
                .wait_timeout(state, config.scan_interval)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }

    /// One supervisor scan. Runs under the state lock (witnessed by
    /// `state`), so escalation is atomic with worker commits.
    fn scan_for_wedged(self: &Arc<Self>, state: &PoolState, config: &SupervisorConfig) {
        let Some(job) = state.job.as_ref() else { return };
        // Unbudgeted jobs have no wall deadline and are never escalated:
        // without a budget there is no "overdue".
        let Some(at) = job.deadline.instant() else { return };
        if Instant::now().saturating_duration_since(at) < config.grace {
            return;
        }
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.busy_epoch.load(Ordering::Acquire) != state.epoch {
                continue;
            }
            if slot.beat.elapsed() < config.stale_after {
                continue;
            }
            self.escalate(state, job, idx, slot);
        }
    }

    /// Escalates one wedged worker: see the module docs of
    /// [`crate::supervisor`] for the ladder.
    fn escalate(
        self: &Arc<Self>,
        state: &PoolState,
        job: &Arc<Job>,
        idx: usize,
        slot: &WorkerSlot,
    ) {
        // Fire the cancel token first: if the worker revives it observes
        // expiry at its next check and exits on its own (as an abandoned
        // generation).
        job.deadline.cancel_token().cancel();
        // Attribute the wedge to the graph the worker was grinding on.
        let mut part = QueryOutcome::default();
        match slot.busy_graph.load(Ordering::Relaxed) {
            usize::MAX => part.status.absorb(QueryStatus::Wedged),
            g => part.record_wedged(GraphId(g as u32)),
        }
        lock(&job.parts).push(part);
        if !job.wedged.swap(true, Ordering::AcqRel) {
            self.queries_wedged.fetch_add(1, Ordering::Relaxed);
        }
        // Abandon the thread: bump the generation so its eventual commit (if
        // it ever revives) is ignored, and detach the handle — a truly
        // wedged thread can never be joined.
        let generation = slot.generation.fetch_add(1, Ordering::AcqRel) + 1;
        slot.busy_epoch.store(0, Ordering::Release);
        drop(lock(&self.handles)[idx].take());
        self.live.fetch_sub(1, Ordering::Relaxed);
        // Replace it in the same slot (same thread name) so the pool keeps
        // full capacity. The replacement starts at the current epoch: this
        // job's shard accounting is settled below, on the wedged worker's
        // behalf. If the OS refuses the thread, capacity degrades by one but
        // the accounting stays correct.
        if self.spawn_worker(idx, generation, state.epoch) {
            self.workers_replaced.fetch_add(1, Ordering::Relaxed);
        }
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.job_done.notify_all();
        }
    }
}

/// A persistent pool of query workers.
///
/// Construct once, submit any number of queries; worker threads are spawned
/// at construction and live until drop, so per-query overhead is one job
/// hand-off instead of `threads` thread spawns. Queries are serialized: a
/// second concurrent [`query`](QueryPool::query) blocks until the first
/// finishes (per-graph parallelism is where the speedup is; cross-query
/// parallelism would make budgets and cancellation ambiguous).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sqp_core::parallel::QueryPool;
/// use sqp_graph::{GraphBuilder, GraphDb, Label};
/// use sqp_matching::cfql::Cfql;
/// use sqp_matching::Deadline;
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(Label(0));
/// let v = b.add_vertex(Label(1));
/// b.add_edge(u, v).unwrap();
/// let g = b.build();
/// let db = Arc::new(GraphDb::from_graphs(vec![g.clone()]));
///
/// let pool = QueryPool::new(2);
/// let r = pool.query(Arc::new(Cfql::new()), &db, &g, Deadline::none());
/// assert_eq!(r.outcome.answers.len(), 1);
/// ```
pub struct QueryPool {
    shared: Arc<PoolShared>,
    /// The watchdog thread; `None` for unsupervised pools.
    supervisor: Option<JoinHandle<()>>,
    /// Serializes query submission (workers handle one job at a time).
    submit: Mutex<()>,
    cancel: CancelToken,
    /// Kernel-counter sink attached to queries whose deadline has none, so
    /// every [`ParallelOutcome`] carries enumeration-kernel stats.
    stats: StatsSink,
}

impl QueryPool {
    /// Spawns a pool with `threads` persistent workers (at least one
    /// requested; if the OS refuses to spawn any thread at all, the pool
    /// degrades to running queries inline on the submitting thread).
    pub fn new(threads: usize) -> Self {
        Self::named("sqp-pool", threads)
    }

    /// Like [`QueryPool::new`] but with a caller-chosen worker-thread name
    /// prefix (threads are named `{prefix}-{i}`). Distinct prefixes let the
    /// drain tests verify via `/proc/self/task` that shutdown leaks no
    /// worker threads even while other pools run concurrently.
    pub fn named(prefix: &str, threads: usize) -> Self {
        Self::build(prefix, threads, None)
    }

    /// Like [`QueryPool::named`], but with a supervisor thread watching the
    /// worker heartbeats: a worker stuck past `deadline + grace` without
    /// ticking is escalated — its query degrades to
    /// [`QueryStatus::Wedged`], the thread is abandoned, and a replacement
    /// worker restores capacity. See [`crate::supervisor`] for the protocol.
    pub fn supervised(prefix: &str, threads: usize, config: SupervisorConfig) -> Self {
        Self::build(prefix, threads, Some(config))
    }

    fn build(prefix: &str, threads: usize, config: Option<SupervisorConfig>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { job: None, epoch: 0, shutdown: false }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            slots: (0..threads).map(|_| WorkerSlot::new()).collect(),
            handles: Mutex::new((0..threads).map(|_| None).collect()),
            live: AtomicUsize::new(0),
            prefix: prefix.to_string(),
            queries_wedged: AtomicU64::new(0),
            workers_replaced: AtomicU64::new(0),
        });
        for i in 0..threads {
            // Out of threads: run with however many we got.
            if !shared.spawn_worker(i, 0, 0) {
                break;
            }
        }
        let supervisor = config.and_then(|config| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{prefix}-sup"))
                .spawn(move || supervisor_loop(shared, config))
                .ok()
        });
        Self {
            shared,
            supervisor,
            submit: Mutex::new(()),
            cancel: CancelToken::new(),
            stats: StatsSink::new(),
        }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads (0 means queries run inline on the
    /// submitter; see [`QueryPool::new`]).
    pub fn threads(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Queries that had a worker escalated as wedged by the supervisor.
    pub fn wedged_queries(&self) -> u64 {
        self.shared.queries_wedged.load(Ordering::Relaxed)
    }

    /// Worker threads abandoned and replaced by the supervisor.
    pub fn workers_replaced(&self) -> u64 {
        self.shared.workers_replaced.load(Ordering::Relaxed)
    }

    /// Cancels the in-flight query (if any): all workers observe expiry at
    /// their next deadline check and the outcome is flagged timed out.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Runs `matcher` as a vcFV query over the whole database. Results are
    /// identical to the sequential engine's for queries that complete within
    /// the budget (answers sorted by graph id); only timing differs.
    ///
    /// The pool attaches its own [`CancelToken`] to `deadline`, so the first
    /// worker to time out stops all others promptly and the merged outcome
    /// is flagged timed out.
    ///
    /// This method never panics on matcher failures: a panic on one (query,
    /// graph) pair degrades that pair to a [`GraphFailure`] (all other
    /// answers are preserved), and even an infrastructure panic in the pool
    /// itself is absorbed into [`QueryStatus::Panicked`] with every
    /// completed worker part intact.
    pub fn query(
        &self,
        matcher: Arc<dyn Matcher>,
        db: &Arc<GraphDb>,
        q: &Graph,
        deadline: Deadline,
    ) -> ParallelOutcome {
        self.query_masked(matcher, db, q, deadline, None)
    }

    /// Like [`query`](QueryPool::query), but graphs whose entry in `mask` is
    /// `true` are short-circuited to a [`QueryStatus::Quarantined`] failure
    /// record without consulting the matcher — the serving layer's circuit
    /// breakers use this to quarantine sick graphs. `mask`, when present,
    /// must have exactly `db.len()` entries.
    pub fn query_masked(
        &self,
        matcher: Arc<dyn Matcher>,
        db: &Arc<GraphDb>,
        q: &Graph,
        deadline: Deadline,
        mask: Option<Arc<[bool]>>,
    ) -> ParallelOutcome {
        if let Some(mask) = &mask {
            assert_eq!(mask.len(), db.len(), "quarantine mask must cover the whole database");
        }
        let _serial = lock(&self.submit);
        // Workers are idle here (previous job fully drained), so the flag
        // can be reused without racing a stale cancellation.
        self.cancel.reset();
        let mut deadline = deadline.with_cancel(self.cancel);
        if !deadline.stats().is_some() {
            // Workers are idle (previous job drained), so resetting the
            // pool's shared sink cannot race a stale recording.
            self.stats.reset();
            deadline = deadline.with_stats(self.stats);
        }
        let t0 = Instant::now();
        let threads = self.shared.live.load(Ordering::Relaxed);
        let job = Arc::new(Job {
            matcher,
            db: Arc::clone(db),
            q: q.clone(),
            deadline,
            mask,
            next: AtomicUsize::new(0),
            parts: Mutex::new(Vec::with_capacity(threads.max(1))),
            remaining: AtomicUsize::new(threads),
            panic_note: Mutex::new(None),
            wedged: AtomicBool::new(false),
        });

        if threads == 0 {
            // Degraded pool (no worker threads spawned): run the single
            // shard inline on the submitter, with the same backstop.
            if let Some(part) = job.run_worker_guarded(job.deadline, None, 0) {
                lock(&job.parts).push(part);
            }
        } else {
            let mut state = lock(&self.shared.state);
            state.job = Some(Arc::clone(&job));
            state.epoch += 1;
            self.shared.work_ready.notify_all();
            while job.remaining.load(Ordering::Acquire) != 0 {
                state = self.shared.job_done.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            state.job = None;
            drop(state);
        }

        let parts = std::mem::take(&mut *lock(&job.parts));
        let mut outcome = merge_parts(parts);
        if let Some(message) = lock(&job.panic_note).take() {
            outcome.status.absorb(QueryStatus::Panicked { message });
        }
        // Workers recorded into the (shared, atomic) sink; one snapshot
        // covers every shard regardless of thread count.
        outcome.kernel = deadline.stats().snapshot();
        outcome.phases = deadline.stats().phase_snapshot();
        ParallelOutcome { outcome, wall_time: t0.elapsed(), threads: threads.max(1) }
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Take the handles out first: joining must not hold the lock (a
        // replacement spawn is impossible here — the supervisor is gone —
        // but a still-committing worker takes the state lock, never this).
        let handles: Vec<JoinHandle<()>> =
            lock(&self.shared.handles).iter_mut().filter_map(Option::take).collect();
        // Abandoned (wedged) workers were detached at escalation and are
        // intentionally not joined: they may never exit.
        for w in handles {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>, idx: usize, my_gen: u64, start_epoch: u64) {
    let mut seen_epoch = start_epoch;
    loop {
        let (job, deadline) = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    match state.job.as_ref() {
                        Some(job) => {
                            // Mark the slot busy before releasing the lock
                            // so the supervisor sees an up-to-date picture.
                            let slot = &shared.slots[idx];
                            slot.beat.reset();
                            slot.busy_graph.store(usize::MAX, Ordering::Relaxed);
                            slot.busy_epoch.store(state.epoch, Ordering::Release);
                            break (Arc::clone(job), job.deadline.with_beat(slot.beat));
                        }
                        // A new epoch always installs a job first; treat a
                        // missing one as a spurious wakeup rather than
                        // poisoning the whole pool.
                        None => continue,
                    }
                }
                state = shared.work_ready.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let part = job.run_worker_guarded(deadline, Some(&shared.slots[idx]), my_gen);
        // Commit under the state lock — both so the submitter can't check
        // the counter and sleep between our decrement and notify (missed
        // wakeup), and so the commit is atomic with supervisor escalation.
        let _state = lock(&shared.state);
        let slot = &shared.slots[idx];
        if slot.generation.load(Ordering::Acquire) != my_gen {
            // Abandoned: the supervisor already settled this shard's
            // accounting and a replacement owns the slot. Exit quietly;
            // committing here would double-decrement `remaining` or leak a
            // stale part into a merge.
            return;
        }
        slot.busy_epoch.store(0, Ordering::Release);
        if let Some(part) = part {
            lock(&job.parts).push(part);
        }
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.job_done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy static-partitioning fan-out (baseline)
// ---------------------------------------------------------------------------

/// Runs `matcher` as a vcFV query over the whole database using `threads`
/// freshly spawned workers, each taking a fixed contiguous slice of the
/// database.
///
/// This is the original strategy, kept as the baseline the parallel benches
/// compare [`QueryPool`] against: it spawns threads per query, balances
/// poorly when graph sizes are skewed, and lets sibling workers keep burning
/// budget after one worker times out. Prefer [`QueryPool`].
pub fn parallel_query(
    matcher: &dyn Matcher,
    db: &Arc<GraphDb>,
    q: &Graph,
    threads: usize,
    deadline: Deadline,
) -> ParallelOutcome {
    let threads = threads.clamp(1, db.len().max(1));
    let t0 = Instant::now();
    let chunk = db.len().div_ceil(threads);
    let parts: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|s| {
        for w in 0..threads {
            let parts = &parts;
            let db = Arc::clone(db);
            s.spawn(move || {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(db.len());
                let mut part = QueryOutcome::default();
                for gid in (lo as u32..hi as u32).map(GraphId) {
                    if !process_graph(matcher, &db, q, gid, deadline, &mut part) {
                        break;
                    }
                }
                lock(parts).push(part);
            });
        }
    });

    let mut merged = merge_parts(parts.into_inner().unwrap_or_else(PoisonError::into_inner));
    merged.kernel = deadline.stats().snapshot();
    merged.phases = deadline.stats().phase_snapshot();
    ParallelOutcome { outcome: merged, wall_time: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};
    use sqp_matching::cfql::Cfql;

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn db(n: usize) -> Arc<GraphDb> {
        let graphs = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
                } else {
                    labeled(&[0, 1], &[(0, 1)])
                }
            })
            .collect();
        Arc::new(GraphDb::from_graphs(graphs))
    }

    #[test]
    fn legacy_matches_sequential_results() {
        let db = db(25);
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let cfql = Cfql::new();
        for threads in [1, 2, 4, 8] {
            let r = parallel_query(&cfql, &db, &q, threads, Deadline::none());
            let expected: Vec<GraphId> = (0..25u32).filter(|i| i % 3 == 0).map(GraphId).collect();
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert_eq!(r.outcome.candidates, 9);
            assert!(r.threads <= threads.max(1));
        }
    }

    #[test]
    fn pool_matches_sequential_results() {
        let db = db(25);
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let expected: Vec<GraphId> = (0..25u32).filter(|i| i % 3 == 0).map(GraphId).collect();
        for threads in [1, 2, 4, 8] {
            let pool = QueryPool::new(threads);
            let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
            let r = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert_eq!(r.outcome.candidates, 9);
            assert_eq!(r.threads, threads);
        }
    }

    #[test]
    fn pool_reuses_workers_across_queries() {
        let db = db(12);
        let pool = QueryPool::new(4);
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        let q_tri = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let q_edge = labeled(&[0, 1], &[(0, 1)]);
        for _ in 0..5 {
            let tri = pool.query(Arc::clone(&matcher), &db, &q_tri, Deadline::none());
            assert_eq!(tri.outcome.answers.len(), 4);
            let edge = pool.query(Arc::clone(&matcher), &db, &q_edge, Deadline::none());
            assert_eq!(edge.outcome.answers.len(), 12);
        }
    }

    #[test]
    fn pool_larger_than_database() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(16);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert_eq!(r.outcome.answers.len(), 1);
    }

    #[test]
    fn empty_database() {
        let db = Arc::new(GraphDb::from_graphs(vec![]));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(4);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert!(r.outcome.answers.is_empty());
        assert!(!r.outcome.timed_out());
    }

    #[test]
    fn timeout_propagates_and_cancels_siblings() {
        let db = db(20);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let d = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let pool = QueryPool::new(4);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, d);
        assert!(r.outcome.timed_out());
        // And the pool remains usable for the next (unbudgeted) query.
        let ok = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert!(!ok.outcome.timed_out());
        assert_eq!(ok.outcome.answers.len(), 20);
    }

    #[test]
    fn external_cancel_stops_query() {
        let db = db(40);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(2);
        // Cancel before submission: the query observes it immediately and
        // reports a timeout without processing the whole database... unless
        // workers already drained every graph, which is also acceptable —
        // the point is prompt return, which the test bounds implicitly.
        pool.cancel();
        // reset happens inside query(); cancel *during* the run instead.
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        let r = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
        assert!(!r.outcome.timed_out(), "reset must clear a stale cancel");

        // Now cancel mid-flight from another thread.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(1));
                pool.cancel();
            });
            let _ = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
            // Whether it finished before or after the cancel, the pool must
            // stay consistent for the next query.
        });
        let ok = pool.query(matcher, &db, &q, Deadline::none());
        assert_eq!(ok.outcome.answers.len(), 40);
    }

    #[test]
    fn legacy_timeout_propagates_from_workers() {
        let db = db(20);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let d = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let r = parallel_query(&Cfql::new(), &db, &q, 4, d);
        assert!(r.outcome.timed_out());
    }

    /// A matcher that panics when filtering any data graph whose vertex 0
    /// carries `poison_label`; otherwise delegates to CFQL.
    struct PanicOn {
        inner: Cfql,
        poison_label: Label,
    }

    impl Matcher for PanicOn {
        fn name(&self) -> &'static str {
            "panic-on"
        }
        fn filter(
            &self,
            q: &Graph,
            g: &Graph,
            deadline: Deadline,
        ) -> Result<FilterResult, sqp_matching::Timeout> {
            if g.vertex_count() > 0 && g.label(sqp_graph::VertexId(0)) == self.poison_label {
                panic!("injected matcher panic");
            }
            self.inner.filter(q, g, deadline)
        }
        fn find_first(
            &self,
            q: &Graph,
            g: &Graph,
            space: &sqp_matching::CandidateSpace,
            deadline: Deadline,
        ) -> Result<Option<sqp_matching::Embedding>, sqp_matching::Timeout> {
            self.inner.find_first(q, g, space, deadline)
        }
        fn enumerate(
            &self,
            q: &Graph,
            g: &Graph,
            space: &sqp_matching::CandidateSpace,
            limit: u64,
            deadline: Deadline,
            on_match: &mut dyn FnMut(&sqp_matching::Embedding),
        ) -> Result<u64, sqp_matching::Timeout> {
            self.inner.enumerate(q, g, space, limit, deadline, on_match)
        }
    }

    /// A database where graph `poison` has a distinctive first label the
    /// test matcher panics on; every other graph answers the edge query.
    fn poisoned_db(n: usize, poison: usize) -> Arc<GraphDb> {
        let graphs = (0..n)
            .map(|i| {
                if i == poison {
                    labeled(&[9, 1], &[(0, 1)])
                } else {
                    labeled(&[0, 1], &[(0, 1)])
                }
            })
            .collect();
        Arc::new(GraphDb::from_graphs(graphs))
    }

    #[test]
    fn panic_on_one_graph_preserves_all_other_answers() {
        let q = labeled(&[0, 1], &[(0, 1)]);
        for threads in [1, 2, 4, 8] {
            let db = poisoned_db(20, 7);
            let pool = QueryPool::new(threads);
            let matcher: Arc<dyn Matcher> =
                Arc::new(PanicOn { inner: Cfql::new(), poison_label: Label(9) });
            let r = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
            // All 19 healthy graphs answered; the poisoned one is attributed.
            let expected: Vec<GraphId> = (0..20u32).filter(|&i| i != 7).map(GraphId).collect();
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert!(r.outcome.status.is_panicked(), "{threads} threads");
            assert_eq!(r.outcome.failures.len(), 1);
            assert_eq!(r.outcome.failures[0].graph, GraphId(7));
            assert!(r.outcome.failures[0].status.is_panicked());
            match &r.outcome.status {
                QueryStatus::Panicked { message } => {
                    assert!(message.contains("injected matcher panic"), "{message}");
                }
                other => panic!("unexpected status {other:?}"),
            }
            // The pool stays usable after the panic. (The poisoned graph has
            // labels [9, 1], so even a healthy matcher rejects it: 19 answers.)
            let ok = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
            assert_eq!(ok.outcome.answers, expected);
            assert!(ok.outcome.status.is_completed());
        }
    }

    #[test]
    fn panic_attribution_is_deterministic_across_thread_counts() {
        let q = labeled(&[0, 1], &[(0, 1)]);
        let mut baseline: Option<QueryOutcome> = None;
        for threads in [1, 2, 4, 8] {
            let db = poisoned_db(16, 3);
            let pool = QueryPool::new(threads);
            let matcher: Arc<dyn Matcher> =
                Arc::new(PanicOn { inner: Cfql::new(), poison_label: Label(9) });
            let r = pool.query(matcher, &db, &q, Deadline::none());
            match &baseline {
                None => baseline = Some(r.outcome),
                Some(b) => {
                    assert_eq!(b.answers, r.outcome.answers, "{threads} threads");
                    assert_eq!(b.status, r.outcome.status, "{threads} threads");
                    assert_eq!(b.failures, r.outcome.failures, "{threads} threads");
                }
            }
        }
    }

    #[test]
    fn masked_graphs_short_circuit_to_quarantined() {
        let db = db(12);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let mut mask = vec![false; 12];
        mask[3] = true;
        mask[7] = true;
        let mask: Arc<[bool]> = mask.into();
        for threads in [1, 2, 4, 8] {
            let pool = QueryPool::new(threads);
            let r = pool.query_masked(
                Arc::new(Cfql::new()),
                &db,
                &q,
                Deadline::none(),
                Some(Arc::clone(&mask)),
            );
            let expected: Vec<GraphId> =
                (0..12u32).filter(|&i| i != 3 && i != 7).map(GraphId).collect();
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert!(r.outcome.status.is_quarantined(), "{threads} threads");
            assert_eq!(r.outcome.failures.len(), 2);
            assert_eq!(r.outcome.failures[0].graph, GraphId(3));
            assert_eq!(r.outcome.failures[1].graph, GraphId(7));
            assert!(r.outcome.failures.iter().all(|f| f.status.is_quarantined()));
        }
    }

    #[test]
    fn resource_exhaustion_classified_not_timed_out() {
        use sqp_matching::{ResourceGuard, ResourceKind, ResourceLimits};
        let db = db(30);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let guard = ResourceGuard::new();
        // A 1-byte aux budget trips on the first candidate space.
        guard.reset(ResourceLimits::unlimited().with_max_aux_bytes(1));
        let pool = QueryPool::new(4);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none().with_guard(guard));
        assert!(r.outcome.status.is_exhausted());
        assert_eq!(r.outcome.status, QueryStatus::ResourceExhausted { kind: ResourceKind::Memory });
        assert!(!r.outcome.timed_out());
        assert!(!r.outcome.failures.is_empty());
    }
}
