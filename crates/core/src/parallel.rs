//! Parallel vcFV query processing.
//!
//! Grapes exploits multi-core machines during both indexing and querying
//! (§III-A); the vcFV framework parallelizes even more naturally, since each
//! data graph's filter+verify is independent. This module provides two
//! strategies:
//!
//! * [`QueryPool`] — the production layer: persistent worker threads shared
//!   across queries (no per-query spawn), dynamic work distribution through
//!   a shared atomic counter over graph ids (a degenerate but contention-free
//!   form of work stealing: idle workers "steal" the next unclaimed graph),
//!   and cooperative cancellation so that when any worker exhausts the
//!   budget every sibling stops within one [`TickChecker`] interval.
//! * [`parallel_query`] — the original per-query-spawn, contiguous-chunk
//!   fan-out, kept as the static-partitioning baseline the benches compare
//!   against. Under skewed graph-size distributions (the PPI profile) static
//!   chunks leave straggler threads running alone while the rest idle.
//!
//! Timing semantics: per-phase times are summed across workers (CPU time),
//! while [`ParallelOutcome::wall_time`] reports the end-to-end latency — the
//! number a user of a multi-core deployment cares about. A timed-out
//! parallel query can therefore record summed CPU time *below* the budget
//! (workers stop early on cancellation); `QueryRecord::from_outcome` pins
//! such queries to exactly the budget, as the paper records timeouts at the
//! limit.
//!
//! Invariant I4: for queries that complete within the budget, answers and
//! candidate counts are identical to the sequential engine's for every
//! thread count — the only difference is timing.
//!
//! [`TickChecker`]: sqp_matching::deadline::TickChecker

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb, HeapSize};
use sqp_matching::{CancelToken, Deadline, FilterResult, Matcher};

use crate::engine::QueryOutcome;

/// Outcome of a parallel query.
#[derive(Clone, Debug, Default)]
pub struct ParallelOutcome {
    /// The sequential-equivalent outcome (answers sorted by graph id; times
    /// are summed worker CPU times).
    pub outcome: QueryOutcome,
    /// End-to-end latency of the parallel pass.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs one graph's filter+verify, folding the result into `part`.
/// Returns `false` when the worker should stop (timeout or cancellation).
#[inline]
fn process_graph(
    matcher: &dyn Matcher,
    db: &GraphDb,
    q: &Graph,
    gid: GraphId,
    deadline: Deadline,
    part: &mut QueryOutcome,
) -> bool {
    let g = db.graph(gid);
    let tf = Instant::now();
    let filtered = matcher.filter(q, g, deadline);
    part.filter_time += tf.elapsed();
    match filtered {
        Err(_) => {
            part.timed_out = true;
            false
        }
        Ok(FilterResult::Pruned) => true,
        Ok(FilterResult::Space(space)) => {
            part.candidates += 1;
            part.aux_bytes = part.aux_bytes.max(space.heap_size());
            let tv = Instant::now();
            let verdict = matcher.find_first(q, g, &space, deadline);
            part.verify_time += tv.elapsed();
            match verdict {
                Ok(Some(_)) => {
                    part.answers.push(gid);
                    true
                }
                Ok(None) => true,
                Err(_) => {
                    part.timed_out = true;
                    false
                }
            }
        }
    }
}

fn merge_parts(parts: Vec<QueryOutcome>) -> QueryOutcome {
    let mut merged = QueryOutcome::default();
    for part in parts {
        merged.answers.extend(part.answers);
        merged.candidates += part.candidates;
        merged.filter_time += part.filter_time;
        merged.verify_time += part.verify_time;
        merged.timed_out |= part.timed_out;
        merged.aux_bytes = merged.aux_bytes.max(part.aux_bytes);
    }
    merged.answers.sort_unstable();
    merged
}

// ---------------------------------------------------------------------------
// QueryPool: persistent workers + shared-counter distribution + cancellation
// ---------------------------------------------------------------------------

/// One in-flight parallel query, shared between the submitting thread and
/// the workers.
struct Job {
    matcher: Arc<dyn Matcher>,
    db: Arc<GraphDb>,
    q: Graph,
    deadline: Deadline,
    /// Next unclaimed graph id — the shared work counter. Claiming one graph
    /// at a time gives the finest-grained balance under skewed graph sizes;
    /// one `fetch_add` per graph is noise next to a filter+verify pass.
    next: AtomicUsize,
    /// Per-worker partial outcomes.
    parts: Mutex<Vec<QueryOutcome>>,
    /// Workers that have not yet finished this job.
    remaining: AtomicUsize,
    /// Set when a worker panicked; the submitter re-raises.
    panicked: AtomicBool,
}

impl Job {
    fn run_worker(&self) -> QueryOutcome {
        let mut part = QueryOutcome::default();
        let n = self.db.len();
        loop {
            // Re-check between graphs so cancellation raised by a sibling is
            // honored even when this worker's own matcher calls are short.
            if self.deadline.check().is_err() {
                part.timed_out = true;
                break;
            }
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let gid = GraphId(i as u32);
            if !process_graph(&*self.matcher, &self.db, &self.q, gid, self.deadline, &mut part) {
                // This worker hit the budget: tell every sibling to stop.
                self.deadline.cancel_token().cancel();
                break;
            }
        }
        part
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    /// Bumped once per submitted job so each worker runs each job once.
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    job_done: Condvar,
}

/// A persistent pool of query workers.
///
/// Construct once, submit any number of queries; worker threads are spawned
/// at construction and live until drop, so per-query overhead is one job
/// hand-off instead of `threads` thread spawns. Queries are serialized: a
/// second concurrent [`query`](QueryPool::query) blocks until the first
/// finishes (per-graph parallelism is where the speedup is; cross-query
/// parallelism would make budgets and cancellation ambiguous).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sqp_core::parallel::QueryPool;
/// use sqp_graph::{GraphBuilder, GraphDb, Label};
/// use sqp_matching::cfql::Cfql;
/// use sqp_matching::Deadline;
///
/// let mut b = GraphBuilder::new();
/// let u = b.add_vertex(Label(0));
/// let v = b.add_vertex(Label(1));
/// b.add_edge(u, v).unwrap();
/// let g = b.build();
/// let db = Arc::new(GraphDb::from_graphs(vec![g.clone()]));
///
/// let pool = QueryPool::new(2);
/// let r = pool.query(Arc::new(Cfql::new()), &db, &g, Deadline::none());
/// assert_eq!(r.outcome.answers.len(), 1);
/// ```
pub struct QueryPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes query submission (workers handle one job at a time).
    submit: Mutex<()>,
    cancel: CancelToken,
}

impl QueryPool {
    /// Spawns a pool with `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { job: None, epoch: 0, shutdown: false }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sqp-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers, submit: Mutex::new(()), cancel: CancelToken::new() }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Cancels the in-flight query (if any): all workers observe expiry at
    /// their next deadline check and the outcome is flagged `timed_out`.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Runs `matcher` as a vcFV query over the whole database. Results are
    /// identical to the sequential engine's for queries that complete within
    /// the budget (answers sorted by graph id); only timing differs.
    ///
    /// The pool attaches its own [`CancelToken`] to `deadline`, so the first
    /// worker to time out stops all others promptly and the merged outcome
    /// is flagged `timed_out`.
    ///
    /// # Panics
    /// Re-raises if a worker panicked while processing the query.
    pub fn query(
        &self,
        matcher: Arc<dyn Matcher>,
        db: &Arc<GraphDb>,
        q: &Graph,
        deadline: Deadline,
    ) -> ParallelOutcome {
        let _serial = self.submit.lock().unwrap();
        // Workers are idle here (previous job fully drained), so the flag
        // can be reused without racing a stale cancellation.
        self.cancel.reset();
        let deadline = deadline.with_cancel(self.cancel);
        let t0 = Instant::now();
        let threads = self.workers.len();
        let job = Arc::new(Job {
            matcher,
            db: Arc::clone(db),
            q: q.clone(),
            deadline,
            next: AtomicUsize::new(0),
            parts: Mutex::new(Vec::with_capacity(threads)),
            remaining: AtomicUsize::new(threads),
            panicked: AtomicBool::new(false),
        });

        let mut state = self.shared.state.lock().unwrap();
        state.job = Some(Arc::clone(&job));
        state.epoch += 1;
        self.shared.work_ready.notify_all();
        while job.remaining.load(Ordering::Acquire) != 0 {
            state = self.shared.job_done.wait(state).unwrap();
        }
        state.job = None;
        drop(state);

        if job.panicked.load(Ordering::Acquire) {
            panic!("parallel query worker panicked");
        }
        let parts = std::mem::take(&mut *job.parts.lock().unwrap());
        ParallelOutcome { outcome: merge_parts(parts), wall_time: t0.elapsed(), threads }
    }
}

impl Drop for QueryPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.as_ref().map(Arc::clone).expect("epoch implies job");
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };
        match catch_unwind(AssertUnwindSafe(|| job.run_worker())) {
            Ok(part) => job.parts.lock().unwrap().push(part),
            Err(_) => {
                job.panicked.store(true, Ordering::Release);
                // Unblock siblings still grinding on their graphs.
                job.deadline.cancel_token().cancel();
            }
        }
        // Decrement under the state lock so the submitter can't check the
        // counter and sleep between our decrement and notify (missed wakeup).
        let _state = shared.state.lock().unwrap();
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            shared.job_done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy static-partitioning fan-out (baseline)
// ---------------------------------------------------------------------------

/// Runs `matcher` as a vcFV query over the whole database using `threads`
/// freshly spawned workers, each taking a fixed contiguous slice of the
/// database.
///
/// This is the original strategy, kept as the baseline the parallel benches
/// compare [`QueryPool`] against: it spawns threads per query, balances
/// poorly when graph sizes are skewed, and lets sibling workers keep burning
/// budget after one worker times out. Prefer [`QueryPool`].
pub fn parallel_query(
    matcher: &dyn Matcher,
    db: &Arc<GraphDb>,
    q: &Graph,
    threads: usize,
    deadline: Deadline,
) -> ParallelOutcome {
    let threads = threads.clamp(1, db.len().max(1));
    let t0 = Instant::now();
    let chunk = db.len().div_ceil(threads);
    let parts: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::with_capacity(threads));

    std::thread::scope(|s| {
        for w in 0..threads {
            let parts = &parts;
            let db = Arc::clone(db);
            s.spawn(move || {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(db.len());
                let mut part = QueryOutcome::default();
                for gid in (lo as u32..hi as u32).map(GraphId) {
                    if !process_graph(matcher, &db, q, gid, deadline, &mut part) {
                        break;
                    }
                }
                parts.lock().unwrap().push(part);
            });
        }
    });

    let merged = merge_parts(parts.into_inner().unwrap());
    ParallelOutcome { outcome: merged, wall_time: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};
    use sqp_matching::cfql::Cfql;

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn db(n: usize) -> Arc<GraphDb> {
        let graphs = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
                } else {
                    labeled(&[0, 1], &[(0, 1)])
                }
            })
            .collect();
        Arc::new(GraphDb::from_graphs(graphs))
    }

    #[test]
    fn legacy_matches_sequential_results() {
        let db = db(25);
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let cfql = Cfql::new();
        for threads in [1, 2, 4, 8] {
            let r = parallel_query(&cfql, &db, &q, threads, Deadline::none());
            let expected: Vec<GraphId> = (0..25u32).filter(|i| i % 3 == 0).map(GraphId).collect();
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert_eq!(r.outcome.candidates, 9);
            assert!(r.threads <= threads.max(1));
        }
    }

    #[test]
    fn pool_matches_sequential_results() {
        let db = db(25);
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let expected: Vec<GraphId> = (0..25u32).filter(|i| i % 3 == 0).map(GraphId).collect();
        for threads in [1, 2, 4, 8] {
            let pool = QueryPool::new(threads);
            let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
            let r = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert_eq!(r.outcome.candidates, 9);
            assert_eq!(r.threads, threads);
        }
    }

    #[test]
    fn pool_reuses_workers_across_queries() {
        let db = db(12);
        let pool = QueryPool::new(4);
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        let q_tri = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let q_edge = labeled(&[0, 1], &[(0, 1)]);
        for _ in 0..5 {
            let tri = pool.query(Arc::clone(&matcher), &db, &q_tri, Deadline::none());
            assert_eq!(tri.outcome.answers.len(), 4);
            let edge = pool.query(Arc::clone(&matcher), &db, &q_edge, Deadline::none());
            assert_eq!(edge.outcome.answers.len(), 12);
        }
    }

    #[test]
    fn pool_larger_than_database() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(16);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert_eq!(r.outcome.answers.len(), 1);
    }

    #[test]
    fn empty_database() {
        let db = Arc::new(GraphDb::from_graphs(vec![]));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(4);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert!(r.outcome.answers.is_empty());
        assert!(!r.outcome.timed_out);
    }

    #[test]
    fn timeout_propagates_and_cancels_siblings() {
        let db = db(20);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let d = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let pool = QueryPool::new(4);
        let r = pool.query(Arc::new(Cfql::new()), &db, &q, d);
        assert!(r.outcome.timed_out);
        // And the pool remains usable for the next (unbudgeted) query.
        let ok = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        assert!(!ok.outcome.timed_out);
        assert_eq!(ok.outcome.answers.len(), 20);
    }

    #[test]
    fn external_cancel_stops_query() {
        let db = db(40);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let pool = QueryPool::new(2);
        // Cancel before submission: the query observes it immediately and
        // reports a timeout without processing the whole database... unless
        // workers already drained every graph, which is also acceptable —
        // the point is prompt return, which the test bounds implicitly.
        pool.cancel();
        // reset happens inside query(); cancel *during* the run instead.
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        let r = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
        assert!(!r.outcome.timed_out, "reset must clear a stale cancel");

        // Now cancel mid-flight from another thread.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(1));
                pool.cancel();
            });
            let _ = pool.query(Arc::clone(&matcher), &db, &q, Deadline::none());
            // Whether it finished before or after the cancel, the pool must
            // stay consistent for the next query.
        });
        let ok = pool.query(matcher, &db, &q, Deadline::none());
        assert_eq!(ok.outcome.answers.len(), 40);
    }

    #[test]
    fn legacy_timeout_propagates_from_workers() {
        let db = db(20);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let d = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let r = parallel_query(&Cfql::new(), &db, &q, 4, d);
        assert!(r.outcome.timed_out);
    }
}
