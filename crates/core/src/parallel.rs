//! Parallel vcFV query processing.
//!
//! Grapes exploits multi-core machines during both indexing and querying
//! (§III-A); the vcFV framework parallelizes even more naturally, since each
//! data graph's filter+verify is independent. This module fans a query out
//! over worker threads, each processing a contiguous slice of the database.
//!
//! Timing semantics: per-phase times are summed across workers (CPU time),
//! while [`ParallelOutcome::wall_time`] reports the end-to-end latency — the
//! number a user of a multi-core deployment cares about.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::thread;
use parking_lot::Mutex;

use sqp_graph::database::GraphId;
use sqp_graph::{Graph, GraphDb, HeapSize};
use sqp_matching::{Deadline, FilterResult, Matcher};

use crate::engine::QueryOutcome;

/// Outcome of a parallel query.
#[derive(Clone, Debug, Default)]
pub struct ParallelOutcome {
    /// The sequential-equivalent outcome (answers sorted by graph id; times
    /// are summed worker CPU times).
    pub outcome: QueryOutcome,
    /// End-to-end latency of the parallel pass.
    pub wall_time: Duration,
    /// Worker threads used.
    pub threads: usize,
}

/// Runs `matcher` as a vcFV query over the whole database using `threads`
/// workers. Results are identical to the sequential engine's (answers are
/// sorted by graph id); only timing differs.
pub fn parallel_query(
    matcher: &dyn Matcher,
    db: &Arc<GraphDb>,
    q: &Graph,
    threads: usize,
    deadline: Deadline,
) -> ParallelOutcome {
    let threads = threads.clamp(1, db.len().max(1));
    let t0 = Instant::now();
    let chunk = db.len().div_ceil(threads);
    let results: Mutex<Vec<QueryOutcome>> = Mutex::new(Vec::with_capacity(threads));

    thread::scope(|s| {
        for w in 0..threads {
            let results = &results;
            let db = Arc::clone(db);
            s.spawn(move |_| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(db.len());
                let mut part = QueryOutcome::default();
                for gid in (lo as u32..hi as u32).map(GraphId) {
                    let g = db.graph(gid);
                    let tf = Instant::now();
                    let filtered = matcher.filter(q, g, deadline);
                    part.filter_time += tf.elapsed();
                    match filtered {
                        Err(_) => {
                            part.timed_out = true;
                            break;
                        }
                        Ok(FilterResult::Pruned) => {}
                        Ok(FilterResult::Space(space)) => {
                            part.candidates += 1;
                            part.aux_bytes = part.aux_bytes.max(space.heap_size());
                            let tv = Instant::now();
                            let verdict = matcher.find_first(q, g, &space, deadline);
                            part.verify_time += tv.elapsed();
                            match verdict {
                                Ok(Some(_)) => part.answers.push(gid),
                                Ok(None) => {}
                                Err(_) => {
                                    part.timed_out = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                results.lock().push(part);
            });
        }
    })
    .expect("worker panicked");

    let mut merged = QueryOutcome::default();
    for part in results.into_inner() {
        merged.answers.extend(part.answers);
        merged.candidates += part.candidates;
        merged.filter_time += part.filter_time;
        merged.verify_time += part.verify_time;
        merged.timed_out |= part.timed_out;
        merged.aux_bytes = merged.aux_bytes.max(part.aux_bytes);
    }
    merged.answers.sort_unstable();
    ParallelOutcome { outcome: merged, wall_time: t0.elapsed(), threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label, VertexId};
    use sqp_matching::cfql::Cfql;

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).unwrap();
        }
        b.build()
    }

    fn db(n: usize) -> Arc<GraphDb> {
        let graphs = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
                } else {
                    labeled(&[0, 1], &[(0, 1)])
                }
            })
            .collect();
        Arc::new(GraphDb::from_graphs(graphs))
    }

    #[test]
    fn matches_sequential_results() {
        let db = db(25);
        let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let cfql = Cfql::new();
        for threads in [1, 2, 4, 8] {
            let r = parallel_query(&cfql, &db, &q, threads, Deadline::none());
            let expected: Vec<GraphId> =
                (0..25u32).filter(|i| i % 3 == 0).map(GraphId).collect();
            assert_eq!(r.outcome.answers, expected, "{threads} threads");
            assert_eq!(r.outcome.candidates, 9);
            assert!(r.threads <= threads.max(1));
        }
    }

    #[test]
    fn single_graph_database() {
        let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
        let q = labeled(&[0, 1], &[(0, 1)]);
        let r = parallel_query(&Cfql::new(), &db, &q, 16, Deadline::none());
        assert_eq!(r.outcome.answers.len(), 1);
        assert_eq!(r.threads, 1);
    }

    #[test]
    fn timeout_propagates_from_workers() {
        let db = db(20);
        let q = labeled(&[0, 1], &[(0, 1)]);
        let d = Deadline::at(std::time::Instant::now() - Duration::from_millis(1));
        let r = parallel_query(&Cfql::new(), &db, &q, 4, d);
        assert!(r.outcome.timed_out);
    }
}
