//! Crash-consistent run journal: append-only, checksummed, torn-tail
//! tolerant.
//!
//! A SIGKILL'd multi-hour run used to lose every completed [`QueryRecord`];
//! the journal makes query-set runs resumable. Each terminal outcome is one
//! line, appended as the query finishes:
//!
//! ```text
//! v2 <db_fp:016x> <q_fp:016x> <status> <answers> <engine> <fnv:016x>\n
//! ```
//!
//! where `db_fp` is the [`db_fingerprint`] of the database the run is over,
//! `q_fp` the [`graph_fingerprint`] of the query, `status` the terminal
//! [`QueryStatus`] label, `answers` the answer count, `engine` the name of
//! the engine that served the query (`-` when unknown; required for offline
//! cost-model training and resume accounting under adaptive routing, which
//! can serve different queries of one run with different engines), and
//! `fnv` the FNV-1a 64-bit checksum of everything before it on the line
//! (the same FNV constants as the binio trailer). Journals written before
//! the engine field existed (`v1`, no engine token) still replay.
//!
//! # Replay rules
//!
//! Replay ([`RunJournal::resume`]) scans from the top and stops at the
//! **first** line that is malformed, fails its checksum, or names a
//! different database — so a torn tail (a crash mid-append) always replays
//! to a *prefix* of the recorded outcomes, never to a false completion. The
//! torn tail is then truncated away so new appends never sit behind garbage
//! (which a later replay would refuse to read past). Two further rules keep
//! resume sound:
//!
//! * `shed` records never enter the done set — a shed query did no work and
//!   must re-run;
//! * query identity is structural ([`graph_fingerprint`]), so duplicate
//!   queries in a set share one journal entry (they would produce the same
//!   result anyway).
//!
//! [`QueryRecord`]: crate::metrics::QueryRecord

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use sqp_graph::database::GraphId;
use sqp_graph::hash::FxHasher;
use sqp_graph::GraphDb;

use crate::chaos::graph_fingerprint;
use crate::engine::QueryStatus;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structural fingerprint of a whole database: the journal's notion of
/// "the same run". Hashes every graph's [`graph_fingerprint`] in order, so
/// any edit to the database invalidates old journals instead of silently
/// skipping queries against different data.
pub fn db_fingerprint(db: &GraphDb) -> u64 {
    let mut h = FxHasher::default();
    db.len().hash(&mut h);
    for i in 0..db.len() {
        graph_fingerprint(db.graph(GraphId(i as u32))).hash(&mut h);
    }
    h.finish()
}

/// Journal activity counters, surfaced in the Prometheus exposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Valid records recovered on [`RunJournal::resume`].
    pub replayed: u64,
    /// Records appended by this process.
    pub appended: u64,
    /// Queries skipped because the journal already held their outcome.
    pub skipped: u64,
}

/// The status label written to (and parsed from) journal lines. Kept in
/// sync with the Prometheus `status` label values.
fn status_label(status: &QueryStatus) -> &'static str {
    match status {
        QueryStatus::Completed => "completed",
        QueryStatus::TimedOut => "timed_out",
        QueryStatus::ResourceExhausted { .. } => "resource_exhausted",
        QueryStatus::Quarantined => "quarantined",
        QueryStatus::Panicked { .. } => "panicked",
        QueryStatus::Wedged => "wedged",
        QueryStatus::Unavailable => "unavailable",
        QueryStatus::Shed => "shed",
    }
}

/// An open run journal: a replayed done-set plus an append handle.
pub struct RunJournal {
    file: File,
    db_fp: u64,
    done: HashSet<u64>,
    stats: JournalStats,
}

impl RunJournal {
    /// Starts a fresh journal at `path` (truncating any existing file) for
    /// a run over the database fingerprinted `db_fp`.
    pub fn create(path: &Path, db_fp: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(Self { file, db_fp, done: HashSet::new(), stats: JournalStats::default() })
    }

    /// Opens `path` for resumption: replays the valid prefix (see the
    /// module docs for the replay rules), truncates everything after it,
    /// and positions for appending. A missing file starts an empty journal.
    pub fn resume(path: &Path, db_fp: u64) -> std::io::Result<Self> {
        // Deliberately NOT truncate-on-open: the existing records are the
        // point. Only the invalid tail is truncated, after replay below.
        #[allow(clippy::suspicious_open_options)]
        let mut file = OpenOptions::new().create(true).read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut done = HashSet::new();
        let mut replayed = 0u64;
        let mut valid_len = 0usize;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                break; // torn tail: no newline
            };
            let line = &bytes[offset..offset + nl];
            let Some((q_fp, label)) = parse_line(line, db_fp) else {
                break; // malformed, bad checksum, or foreign database
            };
            if label != "shed" {
                done.insert(q_fp);
            }
            replayed += 1;
            offset += nl + 1;
            valid_len = offset;
        }
        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok(Self { file, db_fp, done, stats: JournalStats { replayed, ..JournalStats::default() } })
    }

    /// Whether the journal already holds a terminal (non-shed) outcome for
    /// the query fingerprinted `q_fp`.
    pub fn is_done(&self, q_fp: u64) -> bool {
        self.done.contains(&q_fp)
    }

    /// [`is_done`](RunJournal::is_done) plus skip accounting: the resume
    /// paths call this once per query before running it.
    pub fn should_skip(&mut self, q_fp: u64) -> bool {
        let skip = self.done.contains(&q_fp);
        if skip {
            self.stats.skipped += 1;
        }
        skip
    }

    /// Appends one terminal outcome. The line is flushed to the OS before
    /// returning, so a process kill right after a query completes cannot
    /// lose it (a machine crash can still tear the tail — replay tolerates
    /// that).
    pub fn record(
        &mut self,
        q_fp: u64,
        status: &QueryStatus,
        answers: usize,
        engine: &str,
    ) -> std::io::Result<()> {
        let engine = engine_token(engine);
        let prefix = format!(
            "v2 {:016x} {:016x} {} {answers} {engine}",
            self.db_fp,
            q_fp,
            status_label(status)
        );
        let sum = fnv1a64(prefix.as_bytes());
        self.file.write_all(format!("{prefix} {sum:016x}\n").as_bytes())?;
        self.file.flush()?;
        self.stats.appended += 1;
        if !matches!(status, QueryStatus::Shed) {
            self.done.insert(q_fp);
        }
        Ok(())
    }

    /// Forces every appended record down to durable storage
    /// (`fdatasync`). [`record`](RunJournal::record) only flushes to the
    /// OS — cheap, and enough to survive a process kill — so the drain
    /// paths call this when a SIGINT starts the drain window: outcomes
    /// already decided must survive even a machine crash between drain
    /// start and process exit.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Activity counters for the exposition layer.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Queries with a recorded terminal (non-shed) outcome.
    pub fn done_count(&self) -> usize {
        self.done.len()
    }
}

/// The engine name as written to a journal line: space-free (space is the
/// field separator) and never empty (`-` = unknown).
fn engine_token(engine: &str) -> String {
    let cleaned: String = engine.chars().map(|c| if c.is_whitespace() { '-' } else { c }).collect();
    if cleaned.is_empty() {
        "-".to_string()
    } else {
        cleaned
    }
}

/// Parses one journal line; returns the query fingerprint and status label
/// iff the line is well-formed, checksums cleanly, and belongs to `db_fp`.
/// Accepts the current `v2` format (with an engine token) and the legacy
/// `v1` format (without one) — old journals stay resumable.
fn parse_line(line: &[u8], db_fp: u64) -> Option<(u64, &str)> {
    let line = std::str::from_utf8(line).ok()?;
    let (prefix, sum) = line.rsplit_once(' ')?;
    if u64::from_str_radix(sum, 16).ok()? != fnv1a64(prefix.as_bytes()) {
        return None;
    }
    let mut fields = prefix.split(' ');
    let version = fields.next()?;
    if version != "v1" && version != "v2" {
        return None;
    }
    if u64::from_str_radix(fields.next()?, 16).ok()? != db_fp {
        return None;
    }
    let q_fp = u64::from_str_radix(fields.next()?, 16).ok()?;
    let label = fields.next()?;
    let _answers: u64 = fields.next()?.parse().ok()?;
    if version == "v2" {
        let _engine = fields.next()?;
    }
    if fields.next().is_some() {
        return None;
    }
    Some((q_fp, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqp_graph::{GraphBuilder, Label};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sqp-journal-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_and_skips_done_queries() {
        let path = tmp("roundtrip");
        let mut j = RunJournal::create(&path, 42).unwrap();
        j.record(1, &QueryStatus::Completed, 5, "CFQL").unwrap();
        j.record(2, &QueryStatus::TimedOut, 0, "GraphQL").unwrap();
        j.record(3, &QueryStatus::Shed, 0, "CFQL").unwrap();
        drop(j);

        let mut j = RunJournal::resume(&path, 42).unwrap();
        assert_eq!(j.stats().replayed, 3);
        assert_eq!(j.done_count(), 2);
        assert!(j.should_skip(1));
        assert!(j.should_skip(2));
        assert!(!j.should_skip(3), "shed queries must re-run");
        assert_eq!(j.stats().skipped, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_database_journal_is_ignored() {
        let path = tmp("foreign");
        let mut j = RunJournal::create(&path, 42).unwrap();
        j.record(1, &QueryStatus::Completed, 5, "CFQL").unwrap();
        drop(j);
        let j = RunJournal::resume(&path, 43).unwrap();
        assert_eq!(j.stats().replayed, 0);
        assert_eq!(j.done_count(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_replays_to_a_prefix_and_is_truncated() {
        let path = tmp("torn");
        let mut j = RunJournal::create(&path, 7).unwrap();
        j.record(10, &QueryStatus::Completed, 1, "CFQL").unwrap();
        j.record(11, &QueryStatus::Completed, 2, "CFQL").unwrap();
        drop(j);
        // Tear the last record in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let mut j = RunJournal::resume(&path, 7).unwrap();
        assert_eq!(j.stats().replayed, 1);
        assert!(j.is_done(10));
        assert!(!j.is_done(11), "torn record must not count as done");
        // The tail was truncated; appending and re-replaying is clean.
        j.record(11, &QueryStatus::Completed, 2, "CFQL").unwrap();
        drop(j);
        let j = RunJournal::resume(&path, 7).unwrap();
        assert_eq!(j.stats().replayed, 2);
        assert!(j.is_done(11));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_invalidates_the_record_and_its_suffix() {
        let path = tmp("corrupt");
        let mut j = RunJournal::create(&path, 7).unwrap();
        j.record(10, &QueryStatus::Completed, 1, "CFQL").unwrap();
        j.record(11, &QueryStatus::Completed, 2, "CFQL").unwrap();
        j.record(12, &QueryStatus::Completed, 3, "CFQL").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let line_len = bytes.len() / 3;
        bytes[line_len + 5] ^= 0x01; // flip a bit inside record 2
        std::fs::write(&path, &bytes).unwrap();

        let j = RunJournal::resume(&path, 7).unwrap();
        assert_eq!(j.stats().replayed, 1, "replay stops at the corrupt line");
        assert!(j.is_done(10));
        assert!(!j.is_done(11));
        assert!(!j.is_done(12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_carry_the_serving_engine() {
        let path = tmp("engine");
        let mut j = RunJournal::create(&path, 42).unwrap();
        j.record(1, &QueryStatus::Completed, 5, "CFQL").unwrap();
        // Spaces would break the field layout; they are mapped to dashes.
        j.record(2, &QueryStatus::Completed, 0, "CT Index").unwrap();
        // An unknown engine writes the placeholder token.
        j.record(3, &QueryStatus::Completed, 0, "").unwrap();
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let engines: Vec<&str> = text.lines().map(|l| l.split(' ').nth(5).unwrap()).collect();
        assert_eq!(engines, ["CFQL", "CT-Index", "-"]);
        // And the lines still replay cleanly.
        let j = RunJournal::resume(&path, 42).unwrap();
        assert_eq!(j.stats().replayed, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v1_lines_still_replay() {
        let path = tmp("v1compat");
        // A pre-engine-field journal: v1 lines without an engine token.
        let mut text = String::new();
        for (q_fp, label, answers) in [(1u64, "completed", 5), (2, "timed_out", 0)] {
            let prefix = format!("v1 {:016x} {q_fp:016x} {label} {answers}", 42u64);
            let sum = fnv1a64(prefix.as_bytes());
            text.push_str(&format!("{prefix} {sum:016x}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let mut j = RunJournal::resume(&path, 42).unwrap();
        assert_eq!(j.stats().replayed, 2);
        assert!(j.is_done(1));
        assert!(j.is_done(2));
        // Appending after a v1 replay writes v2 lines; both replay together.
        j.record(3, &QueryStatus::Completed, 1, "GraphQL").unwrap();
        drop(j);
        let j = RunJournal::resume(&path, 42).unwrap();
        assert_eq!(j.stats().replayed, 3);
        assert!(j.is_done(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_line_with_extra_field_is_rejected() {
        let path = tmp("extrafield");
        let prefix = format!("v2 {:016x} {:016x} completed 1 CFQL extra", 42u64, 9u64);
        let sum = fnv1a64(prefix.as_bytes());
        std::fs::write(&path, format!("{prefix} {sum:016x}\n")).unwrap();
        let j = RunJournal::resume(&path, 42).unwrap();
        assert_eq!(j.stats().replayed, 0, "extra fields must not parse");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn db_fingerprint_tracks_content() {
        let g = |l: u32| {
            let mut b = GraphBuilder::new();
            b.add_vertex(Label(l));
            b.build()
        };
        let a = GraphDb::from_graphs(vec![g(0), g(1)]);
        let b = GraphDb::from_graphs(vec![g(0), g(1)]);
        let c = GraphDb::from_graphs(vec![g(0), g(2)]);
        assert_eq!(db_fingerprint(&a), db_fingerprint(&b));
        assert_ne!(db_fingerprint(&a), db_fingerprint(&c));
    }
}
