//! Invariant I1: every engine returns exactly the brute-force answer set on
//! randomized databases and queries (soundness *and* completeness of the
//! whole pipeline: index filtering, vertex-connectivity filtering, and
//! verification).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use subgraph_query::core::engines::paper_engines;
use subgraph_query::core::prelude::*;
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::GraphDb;
use subgraph_query::matching::brute;

fn brute_answers(db: &GraphDb, q: &subgraph_query::graph::Graph) -> Vec<GraphId> {
    db.iter().filter(|(_, g)| brute::is_subgraph(q, g)).map(|(id, _)| id).collect()
}

#[test]
fn all_engines_match_brute_force_on_random_databases() {
    let mut rng = StdRng::seed_from_u64(1234);
    for trial in 0..8 {
        // A small random database (mixed sizes, some graphs unrelated to
        // the query's source).
        let graphs: Vec<_> =
            (0..12).map(|i| brute::random_graph(&mut rng, 6 + i % 5, 10 + i, 3)).collect();
        let db = Arc::new(GraphDb::from_graphs(graphs));
        let mut queries = Vec::new();
        for g in db.graphs().iter().take(4) {
            queries.push(brute::random_connected_query(&mut rng, g, 3));
        }

        let mut engines = paper_engines();
        engines.push(Box::new(UllmannEngine::new()));
        for engine in engines.iter_mut() {
            engine.build(&db).expect("small build");
        }
        for (qi, q) in queries.iter().enumerate() {
            let expected = brute_answers(&db, q);
            for engine in engines.iter() {
                let out = engine.query(q);
                assert_eq!(
                    out.answers,
                    expected,
                    "trial {trial} query {qi} engine {}",
                    engine.name()
                );
                assert!(
                    out.candidates >= expected.len(),
                    "candidate set smaller than answer set for {}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_label_disjoint_query() {
    let mut rng = StdRng::seed_from_u64(77);
    let graphs: Vec<_> = (0..6).map(|_| brute::random_graph(&mut rng, 8, 12, 2)).collect();
    let db = Arc::new(GraphDb::from_graphs(graphs));
    // A query whose labels don't exist in the database (labels ≥ 2).
    let far = brute::random_graph(&mut rng, 4, 6, 1);
    let q = {
        use subgraph_query::graph::{GraphBuilder, Label, VertexId};
        let mut b = GraphBuilder::new();
        for v in far.vertices() {
            b.add_vertex(Label(far.label(v).id() + 50));
        }
        let mut connected = false;
        for u in far.vertices() {
            for &w in far.neighbors(u) {
                if u < w {
                    b.add_edge(VertexId(u.id()), VertexId(w.id())).unwrap();
                    connected = true;
                }
            }
        }
        if !connected {
            b.add_vertex(Label(51));
        }
        b.build()
    };
    let mut engines = paper_engines();
    for engine in engines.iter_mut() {
        engine.build(&db).unwrap();
        let out = engine.query(&q);
        assert!(out.answers.is_empty(), "engine {}", engine.name());
    }
}

#[test]
fn timed_out_queries_are_flagged_not_wrong() {
    // With a zero budget the engines must flag the timeout rather than
    // return a fabricated answer set.
    let mut rng = StdRng::seed_from_u64(5);
    let graphs: Vec<_> = (0..4).map(|_| brute::random_graph(&mut rng, 10, 20, 1)).collect();
    let db = Arc::new(GraphDb::from_graphs(graphs));
    let q = brute::random_connected_query(&mut rng, &db.graphs()[0], 4);
    let mut engine = CfqlEngine::new();
    engine.build(&db).unwrap();
    engine.set_query_budget(Some(std::time::Duration::from_nanos(0)));
    let out = engine.query(&q);
    assert!(out.timed_out());
}
