//! Property-based tests of the matching invariants (DESIGN.md §5):
//!
//! * I2 — every filter's candidate space is *complete* (Definition III.1);
//! * I3 — every emitted embedding is a valid subgraph isomorphism;
//! * I1 (matcher level) — every matcher's embedding count equals the
//!   brute-force oracle's.

use proptest::prelude::*;

use subgraph_query::graph::{Graph, GraphBuilder, Label, VertexId};
use subgraph_query::matching::cfl::{Cfl, CflConfig};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::graphql::GraphQl;
use subgraph_query::matching::quicksi::QuickSi;
use subgraph_query::matching::spath::SPath;
use subgraph_query::matching::turboiso::TurboIso;
use subgraph_query::matching::ullmann::Ullmann;
use subgraph_query::matching::vf2::Vf2;
use subgraph_query::matching::{brute, Deadline, FilterResult, Matcher};

/// Strategy: a random labeled graph with `n` vertices and up to `m` edges.
fn arb_graph(max_v: usize, max_e: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        let vertex_labels = proptest::collection::vec(0..labels, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_e);
        (vertex_labels, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

/// Strategy: a `(data graph, connected query carved from it)` pair, plus a
/// seed for the carving walk.
fn arb_pair() -> impl Strategy<Value = (Graph, Graph)> {
    (arb_graph(9, 16, 3), any::<u64>()).prop_map(|(g, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = brute::random_connected_query(&mut rng, &g, 3);
        (g, q)
    })
}

fn all_matchers() -> Vec<Box<dyn Matcher>> {
    vec![
        Box::new(GraphQl::new()),
        Box::new(Cfl::new()),
        Box::new(Cfl::with_config(CflConfig { bottom_up: false, top_down: false })),
        Box::new(Cfql::new()),
        Box::new(Ullmann::new()),
        Box::new(QuickSi::new()),
        Box::new(TurboIso::new()),
        Box::new(SPath::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// I2: candidate spaces are complete — every oracle embedding lies
    /// inside Φ; and pruning only happens when the oracle finds nothing.
    #[test]
    fn filters_are_complete((g, q) in arb_pair()) {
        let oracle = brute::enumerate_all(&q, &g);
        for m in all_matchers() {
            match m.filter(&q, &g, Deadline::none()).unwrap() {
                FilterResult::Pruned => prop_assert!(
                    oracle.is_empty(),
                    "{} pruned a graph with {} embeddings", m.name(), oracle.len()
                ),
                FilterResult::Space(space) => prop_assert!(
                    space.is_complete_for(&oracle),
                    "{} candidate space incomplete", m.name()
                ),
            }
        }
    }

    /// I1 + I3: every matcher finds exactly the oracle's embeddings, and
    /// every reported embedding is valid.
    #[test]
    fn matchers_count_like_oracle((g, q) in arb_pair()) {
        let expected = brute::enumerate_all(&q, &g).len() as u64;
        for m in all_matchers() {
            let mut all_valid = true;
            let count = match m.filter(&q, &g, Deadline::none()).unwrap() {
                FilterResult::Pruned => 0,
                FilterResult::Space(space) => m
                    .enumerate(&q, &g, &space, u64::MAX, Deadline::none(), &mut |e| {
                        all_valid &= e.is_valid(&q, &g);
                    })
                    .unwrap(),
            };
            prop_assert!(all_valid, "{} emitted an invalid embedding", m.name());
            prop_assert_eq!(count, expected, "{} count mismatch", m.name());
        }
    }

    /// VF2 (direct enumeration, no Matcher impl) also matches the oracle.
    #[test]
    fn vf2_counts_like_oracle((g, q) in arb_pair()) {
        let expected = brute::enumerate_all(&q, &g).len() as u64;
        let count = Vf2::new().count(&q, &g, u64::MAX, Deadline::none()).unwrap();
        prop_assert_eq!(count, expected);
    }

    /// Decision agreement on arbitrary (not carved) query graphs, including
    /// impossible ones.
    #[test]
    fn decision_agreement_on_arbitrary_pairs(
        g in arb_graph(8, 14, 2),
        q in arb_graph(4, 5, 2),
    ) {
        // Restrict to connected queries (the paper's setting).
        prop_assume!(subgraph_query::graph::algo::is_connected(&q));
        let expected = brute::is_subgraph(&q, &g);
        for m in all_matchers() {
            prop_assert_eq!(
                m.is_subgraph(&q, &g, Deadline::none()).unwrap(),
                expected,
                "{} decision mismatch", m.name()
            );
        }
        prop_assert_eq!(Vf2::new().is_subgraph(&q, &g, Deadline::none()).unwrap(), expected);
    }
}
