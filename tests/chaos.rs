//! Deterministic chaos suite for the fault-tolerant execution layer
//! (DESIGN.md "Failure semantics", invariant I8):
//!
//! * for any injected fault set, every **non-faulted** query returns answers
//!   byte-identical to a fault-free run, at every thread count;
//! * every query with an injected fault carries a non-`Completed`
//!   [`QueryStatus`] matching the fault kind, and panic faults are attributed
//!   to the exact (query, graph) pairs they were planned for;
//! * the run always completes — a panic in one pair never takes down the
//!   pool, the runner, or sibling queries;
//! * panics never count toward `abort_after_timeouts`;
//! * the query cache never stores a faulted outcome.
//!
//! All fault decisions are pure functions of `(seed, query, graph)` — see
//! `ChaosMatcher` — so every assertion here is exact, not statistical.
//! EXPERIMENTS.md lists the seed matrix this suite pins.

use std::sync::Arc;

use proptest::prelude::*;

use subgraph_query::core::chaos::graph_fingerprint;
use subgraph_query::core::prelude::*;
use subgraph_query::datagen::graphgen;
use subgraph_query::datagen::query::{generate_query_set, QueryGenMethod, QuerySetSpec};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphDb};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::{
    Deadline, FilterResult, Matcher, ResourceGuard, ResourceLimits, Timeout,
};

/// The pinned chaos seed (see EXPERIMENTS.md "Chaos suite").
const CHAOS_SEED: u64 = 1001;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// 20 data graphs × 10 queries = 200 (query, graph) pairs.
fn fixture() -> (Arc<GraphDb>, Vec<Graph>) {
    let db = Arc::new(graphgen::generate(20, 16, 4, 3.0, 7));
    let spec = QuerySetSpec { edges: 4, method: QueryGenMethod::RandomWalk, count: 10 };
    let queries = generate_query_set(&db, spec, 11);
    assert_eq!(queries.len(), 10);
    // Fault keys are structural fingerprints; the fixture must not collide.
    let mut fps: Vec<u64> =
        db.graphs().iter().chain(queries.iter()).map(graph_fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), db.len() + queries.len(), "fingerprint collision in fixture");
    (db, queries)
}

/// The standard fault mix: 18% of pairs faulted (panic/timeout/exhaust).
fn chaos_config() -> ChaosConfig {
    ChaosConfig::new(CHAOS_SEED).with_panics(80).with_timeouts(40).with_exhaustion(60)
}

fn chaos_matcher(config: ChaosConfig) -> Arc<dyn Matcher> {
    Arc::new(ChaosMatcher::new(Arc::new(Cfql::new()), config))
}

/// Per-query fault plan, derived without running anything.
fn fault_plan(
    config: ChaosConfig,
    db: &GraphDb,
    queries: &[Graph],
) -> Vec<Vec<(GraphId, FaultKind)>> {
    let probe = ChaosMatcher::new(Arc::new(Cfql::new()), config);
    queries
        .iter()
        .map(|q| {
            db.iter().filter_map(|(id, g)| probe.planned_fault(q, g).map(|k| (id, k))).collect()
        })
        .collect()
}

/// Fault-free reference run: plain CFQL on a single-threaded pool.
fn baseline(db: &Arc<GraphDb>, queries: &[Graph]) -> Vec<QueryOutcome> {
    let pool = QueryPool::new(1);
    let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
    queries
        .iter()
        .map(|q| pool.query(Arc::clone(&matcher), db, q, Deadline::none()).outcome)
        .collect()
}

#[test]
fn fault_plan_covers_at_least_ten_percent_of_pairs() {
    let (db, queries) = fixture();
    let plan = fault_plan(chaos_config(), &db, &queries);
    let total = db.len() * queries.len();
    let faulted: usize = plan.iter().map(Vec::len).sum();
    assert!(faulted * 10 >= total, "chaos config must fault >=10% of pairs: {faulted}/{total}");
    assert!(
        plan.iter().any(Vec::is_empty),
        "fixture needs fault-free queries for the I8 comparison"
    );
    assert!(
        plan.iter().flatten().any(|(_, k)| *k == FaultKind::Panic),
        "fixture needs at least one panic fault"
    );
}

/// The tentpole invariant. For every thread count:
/// * fault-free queries are byte-identical to the baseline;
/// * panic-only queries lose exactly the faulted graphs, keep every other
///   answer, and attribute each planned pair in `failures`;
/// * timeout/exhaust queries surface the matching status.
#[test]
fn i5_injected_faults_never_perturb_nonfaulted_queries() {
    let (db, queries) = fixture();
    let base = baseline(&db, &queries);
    let config = chaos_config();
    let plan = fault_plan(config, &db, &queries);

    for threads in THREAD_COUNTS {
        let pool = QueryPool::new(threads);
        let matcher = chaos_matcher(config);
        let guard = ResourceGuard::new();
        for (i, q) in queries.iter().enumerate() {
            guard.reset(ResourceLimits::unlimited());
            let d = Deadline::none().with_guard(guard);
            let out = pool.query(Arc::clone(&matcher), &db, q, d).outcome;
            let ctx = format!("query {i} at {threads} threads");

            if plan[i].is_empty() {
                assert_eq!(out.answers, base[i].answers, "{ctx}: answers must be identical");
                assert!(out.status.is_completed(), "{ctx}: {:?}", out.status);
                assert!(out.failures.is_empty(), "{ctx}");
                assert_eq!(out.candidates, base[i].candidates, "{ctx}");
                continue;
            }

            assert!(!out.status.is_completed(), "{ctx}: faulted query cannot complete");
            let kinds: Vec<FaultKind> = plan[i].iter().map(|(_, k)| *k).collect();
            if kinds.iter().all(|k| *k == FaultKind::Panic) {
                // Panic isolation: every sibling graph still answers.
                let faulted: Vec<GraphId> = plan[i].iter().map(|(g, _)| *g).collect();
                let expected: Vec<GraphId> =
                    base[i].answers.iter().copied().filter(|g| !faulted.contains(g)).collect();
                assert_eq!(out.answers, expected, "{ctx}: sibling answers must survive");
                assert!(out.status.is_panicked(), "{ctx}: {:?}", out.status);
                let mut attributed: Vec<GraphId> = out.failures.iter().map(|f| f.graph).collect();
                attributed.sort_unstable_by_key(|g| g.0);
                assert_eq!(attributed, faulted, "{ctx}: exact panic attribution");
                for f in &out.failures {
                    assert!(f.status.is_panicked(), "{ctx}: {:?}", f.status);
                }
            } else if kinds.contains(&FaultKind::Panic) {
                // Mixed plans still surface the worst severity.
                assert!(
                    out.status.is_panicked()
                        || out.status.is_exhausted()
                        || out.status.is_timed_out(),
                    "{ctx}: {:?}",
                    out.status
                );
            } else if kinds.iter().all(|k| *k == FaultKind::Timeout) {
                assert!(out.status.is_timed_out(), "{ctx}: {:?}", out.status);
            } else if kinds.iter().all(|k| *k == FaultKind::Exhaust) {
                assert!(out.status.is_exhausted(), "{ctx}: {:?}", out.status);
            } else {
                // Timeout + exhaust mix: whichever interrupt is observed first.
                assert!(
                    out.status.is_timed_out() || out.status.is_exhausted(),
                    "{ctx}: {:?}",
                    out.status
                );
            }
            // Interrupted enumerations may be partial but never fabricate.
            for a in &out.answers {
                assert!(base[i].answers.contains(a), "{ctx}: fabricated answer {a:?}");
            }
        }
    }
}

/// The runner survives the full chaos mix end to end and its rollups agree
/// with the fault plan, at every thread count.
#[test]
fn runner_completes_chaos_run_with_correct_rollups() {
    let (db, queries) = fixture();
    let config = chaos_config();
    let plan = fault_plan(config, &db, &queries);
    let expect_failed = plan.iter().filter(|p| !p.is_empty()).count();
    // A panic pair is always observed (processing continues past it) unless a
    // timeout/exhaust fault in the same query stopped the shard first — so the
    // Panicked rollup is exact for pure-panic plans and bounded for mixed ones.
    let pure_panic = plan
        .iter()
        .filter(|p| !p.is_empty() && p.iter().all(|(_, k)| *k == FaultKind::Panic))
        .count();
    let any_panic = plan.iter().filter(|p| p.iter().any(|(_, k)| *k == FaultKind::Panic)).count();

    for threads in THREAD_COUNTS {
        let pool = QueryPool::new(threads);
        let report = run_query_set_parallel(
            &pool,
            chaos_matcher(config),
            &db,
            "Chaos",
            "chaos",
            &queries,
            RunnerConfig::default(),
        );
        assert_eq!(report.records.len(), queries.len(), "{threads} threads: run must complete");
        assert_eq!(report.failure_count(), expect_failed, "{threads} threads");
        assert!(
            (pure_panic..=any_panic).contains(&report.panic_count()),
            "{threads} threads: panic_count {} outside [{pure_panic}, {any_panic}]",
            report.panic_count()
        );
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.status.is_completed(), plan[i].is_empty(), "query {i}");
            if !plan[i].is_empty() {
                assert!(!rec.failures.is_empty(), "query {i}: faults must be recorded");
            }
            if !plan[i].is_empty() && plan[i].iter().all(|(_, k)| *k == FaultKind::Panic) {
                assert!(rec.status.is_panicked(), "query {i}: {:?}", rec.status);
            }
        }
    }
}

/// Panics are a distinct failure class: `abort_after_timeouts` must ignore
/// them, and a timeout-only chaos run must still trip it.
#[test]
fn abort_after_timeouts_counts_timeouts_not_panics() {
    let (db, queries) = fixture();
    let pool = QueryPool::new(4);
    let config = RunnerConfig { abort_after_timeouts: Some(1), ..RunnerConfig::default() };

    // Panic-heavy, zero timeouts: the runner must visit every query.
    let panicky = ChaosConfig::new(CHAOS_SEED).with_panics(400);
    let report = run_query_set_parallel(
        &pool,
        chaos_matcher(panicky),
        &db,
        "Chaos",
        "panics",
        &queries,
        config,
    );
    assert!(report.panic_count() >= 2, "fixture should panic several queries");
    assert_eq!(report.records.len(), queries.len(), "panics must not trigger the abort");
    assert_eq!(report.timeout_count(), 0);

    // Timeout-heavy: the 40%-rule abort still works.
    let slow = ChaosConfig::new(CHAOS_SEED).with_timeouts(400);
    let report = run_query_set_parallel(
        &pool,
        chaos_matcher(slow),
        &db,
        "Chaos",
        "timeouts",
        &queries,
        config,
    );
    assert!(report.timeout_count() >= 1);
    assert!(report.records.len() < queries.len(), "timeouts must trigger the abort");
}

/// Satellite (c): the cache stores completed outcomes only, before and after
/// a chaos run, and faulted queries are re-executed rather than served.
#[test]
fn cache_never_stores_faulted_outcomes() {
    let (db, queries) = fixture();
    let config = ChaosConfig::new(CHAOS_SEED).with_panics(120).with_exhaustion(80);
    let plan = fault_plan(config, &db, &queries);
    let expect_completed = plan.iter().filter(|p| p.is_empty()).count();
    assert!(expect_completed > 0 && expect_completed < queries.len());

    let mut cached = CachedEngine::new(Box::new(chaos_engine(config)), 64);
    cached.build(&db).expect("build");
    for (i, q) in queries.iter().enumerate() {
        let (out, _) = cached.query(q);
        assert_eq!(out.status.is_completed(), plan[i].is_empty(), "query {i}");
    }
    assert_eq!(cached.len(), expect_completed, "cache must hold completed outcomes only");

    // Second pass: completed queries are served from cache; faulted queries
    // miss, re-execute, and fault deterministically again.
    for (i, q) in queries.iter().enumerate() {
        let (out, hit) = cached.query(q);
        if plan[i].is_empty() {
            assert_eq!(hit, CacheHit::Exact, "query {i}");
            assert!(out.status.is_completed());
        } else {
            assert_eq!(hit, CacheHit::Miss, "query {i}");
            assert!(!out.status.is_completed());
        }
    }
    assert_eq!(cached.len(), expect_completed, "faulted reruns must not pollute the cache");
}

/// A matcher that panics on exactly one (query, graph) pair, identified by
/// structural fingerprint — the targeted form of `ChaosMatcher`.
struct PanicPair {
    inner: Cfql,
    q_fp: u64,
    g_fp: u64,
}

impl Matcher for PanicPair {
    fn name(&self) -> &'static str {
        "panic-pair"
    }
    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        if graph_fingerprint(q) == self.q_fp && graph_fingerprint(g) == self.g_fp {
            panic!("targeted injected panic");
        }
        self.inner.filter(q, g, deadline)
    }
    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &subgraph_query::matching::CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<subgraph_query::matching::Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }
    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &subgraph_query::matching::CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&subgraph_query::matching::Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite (d): a panic injected at a random (query, graph, threads)
    /// coordinate never changes any other record's answers or status.
    #[test]
    fn prop_single_panic_is_isolated(
        qi in 0usize..10,
        gi in 0u32..20,
        threads in 1usize..=8,
    ) {
        let (db, queries) = fixture();
        let base = baseline(&db, &queries);
        let target = GraphId(gi);
        let matcher: Arc<dyn Matcher> = Arc::new(PanicPair {
            inner: Cfql::new(),
            q_fp: graph_fingerprint(&queries[qi]),
            g_fp: graph_fingerprint(&db.graphs()[gi as usize]),
        });
        let pool = QueryPool::new(threads);
        for (i, q) in queries.iter().enumerate() {
            let out = pool.query(Arc::clone(&matcher), &db, q, Deadline::none()).outcome;
            if i == qi {
                let expected: Vec<GraphId> =
                    base[i].answers.iter().copied().filter(|g| *g != target).collect();
                prop_assert_eq!(&out.answers, &expected);
                prop_assert!(out.status.is_panicked());
                prop_assert_eq!(out.failures.len(), 1);
                prop_assert_eq!(out.failures[0].graph, target);
            } else {
                prop_assert_eq!(&out.answers, &base[i].answers);
                prop_assert!(out.status.is_completed());
                prop_assert!(out.failures.is_empty());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Serving layer: breaker lifecycle, drain under load, serving determinism
// (DESIGN.md "Serving & degradation semantics", invariant I8 extension)
// ---------------------------------------------------------------------------

use std::time::Duration;

/// Finds a deterministic flap seed whose flappy set is non-empty but a
/// strict minority of the database (so tests see both degraded and healthy
/// graphs). Pure function of the fixture, so every run picks the same seed.
fn flappy_seed(db: &GraphDb, per_mille: u32) -> (u64, Vec<GraphId>) {
    for seed in 0..1000u64 {
        let config = FlappyConfig { seed, flappy_per_mille: per_mille, faults_before_heal: 3 };
        let m = FlappyMatcher::new(Arc::new(Cfql::new()), config);
        let flappy: Vec<GraphId> =
            db.iter().filter(|(_, g)| m.is_flappy(g)).map(|(id, _)| id).collect();
        if !flappy.is_empty() && flappy.len() <= db.len() / 2 {
            return (seed, flappy);
        }
    }
    panic!("no suitable flappy seed in [0, 1000)");
}

/// Satellite (c), breaker lifecycle: with `fault_threshold = 2`,
/// `cooldown = 3`, and graphs that panic on their first 3 probes and then
/// heal, every flappy graph must walk exactly
/// `Closed →(2) Open →(5) HalfOpen →(5) Open →(8) HalfOpen →(8) Closed`,
/// quarantined graphs must never reach the matcher (probe counters stand
/// still while a breaker is open), and the healed graph is readmitted — at
/// every worker thread count identically.
#[test]
fn breaker_lifecycle_trips_probes_and_readmits() {
    let (db, queries) = fixture();
    let q = &queries[0];
    let (seed, flappy) = flappy_seed(&db, 250);
    let base = {
        let pool = QueryPool::new(1);
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        pool.query(matcher, &db, q, Deadline::none()).outcome
    };

    for threads in THREAD_COUNTS {
        let config = FlappyConfig { seed, flappy_per_mille: 250, faults_before_heal: 3 };
        let matcher = Arc::new(FlappyMatcher::new(Arc::new(Cfql::new()), config));
        let service = QueryService::new(
            Arc::clone(&matcher) as Arc<dyn Matcher>,
            Arc::clone(&db),
            ServiceConfig {
                threads,
                breaker: BreakerConfig { fault_threshold: 2, cooldown: 3 },
                thread_prefix: format!("flap{threads}"),
                ..Default::default()
            },
        );

        // Lockstep: one admitted query per logical breaker tick.
        let mut outcomes = Vec::new();
        for tick in 1..=10u64 {
            let (ticket, admission) = service.submit(q);
            assert!(admission.is_admitted(), "tick {tick} at {threads} threads");
            let (outcome, retries) = ticket.wait();
            assert_eq!(retries, 0, "tick {tick} at {threads} threads");
            outcomes.push(outcome);
        }

        // Status schedule: fault, fault (trip), 2 quarantined ticks,
        // half-open probe faults (re-trip), 2 quarantined ticks, half-open
        // probe heals, then clean.
        let tag = |o: &QueryOutcome| {
            if o.status.is_completed() {
                'C'
            } else if o.status.is_panicked() {
                'P'
            } else if o.status.is_quarantined() {
                'Q'
            } else {
                '?'
            }
        };
        let got: String = outcomes.iter().map(tag).collect();
        assert_eq!(got, "PPQQPQQCCC", "{threads} threads");

        // Healed service returns the exact fault-free answers.
        assert_eq!(outcomes[9].answers, base.answers, "{threads} threads");
        // Quarantine degrades only the flappy graphs, with exact records.
        let degraded: Vec<GraphId> =
            base.answers.iter().copied().filter(|g| !flappy.contains(g)).collect();
        assert_eq!(outcomes[2].answers, degraded, "{threads} threads");
        let quarantined: Vec<GraphId> = outcomes[2].failures.iter().map(|f| f.graph).collect();
        assert_eq!(quarantined, flappy, "{threads} threads");
        assert!(outcomes[2].failures.iter().all(|f| f.status.is_quarantined()));

        // Quarantined graphs never reach the matcher: probes stand still on
        // the 4 open ticks (3, 4, 6, 7), everyone else is probed every tick.
        for (id, g) in db.iter() {
            let expect = if flappy.contains(&id) { 6 } else { 10 };
            assert_eq!(matcher.probes(g), expect, "graph {id:?} at {threads} threads");
        }

        // Exact state machine, per flappy graph and in total.
        use BreakerState::{Closed, HalfOpen, Open};
        let transitions = service.breaker_transitions();
        for &gid in &flappy {
            let walk: Vec<(u64, BreakerState, BreakerState)> = transitions
                .iter()
                .filter(|t| t.graph == gid)
                .map(|t| (t.tick, t.from, t.to))
                .collect();
            assert_eq!(
                walk,
                vec![
                    (2, Closed, Open),
                    (5, Open, HalfOpen),
                    (5, HalfOpen, Open),
                    (8, Open, HalfOpen),
                    (8, HalfOpen, Closed),
                ],
                "graph {gid:?} at {threads} threads"
            );
        }
        assert_eq!(transitions.len(), flappy.len() * 5, "{threads} threads");

        let health = service.health();
        assert_eq!(health.admitted, 10);
        assert_eq!(health.finished, 10);
        assert_eq!(health.open_breakers, 0, "everything healed");
        assert_eq!(health.breaker_trips, flappy.len() as u64 * 2);
        assert_eq!(health.quarantined_graph_results, flappy.len() as u64 * 4);

        let report = service.shutdown();
        assert!(report.drained_within_deadline, "{threads} threads");
        assert_eq!(report.finished, 10);
    }
}

#[cfg(target_os = "linux")]
fn threads_with_prefix(prefix: &str) -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .filter_map(|e| std::fs::read_to_string(e.ok()?.path().join("comm")).ok())
        .filter(|comm| comm.trim_end().starts_with(prefix))
        .count()
}

/// The drain guarantee under genuine overload: a burst of slow queries is
/// submitted, the service is shut down mid-flight, and afterwards every
/// admitted query has a terminal status (finished, cancelled, or shed at
/// drain) and no service thread is left running.
#[test]
fn drain_under_load_resolves_every_admitted_query() {
    let (db, queries) = fixture();
    let matcher: Arc<dyn Matcher> =
        Arc::new(SlowMatcher::new(Arc::new(Cfql::new()), Duration::from_millis(30)));
    let prefix = "sqpdrn7";
    let service = QueryService::new(
        matcher,
        Arc::clone(&db),
        ServiceConfig {
            threads: 4,
            queue_capacity: 16,
            drain_deadline: Duration::from_millis(120),
            thread_prefix: prefix.to_string(),
            ..Default::default()
        },
    );
    // A spawned thread names itself on startup, so poll briefly before
    // concluding the service threads are not there.
    #[cfg(target_os = "linux")]
    {
        let t0 = std::time::Instant::now();
        while threads_with_prefix(prefix) < 5 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(threads_with_prefix(prefix) >= 5, "4 workers + executor should be running");
    }

    let tickets = service.submit_batch(&queries);
    assert!(tickets.iter().all(|(_, a)| a.is_admitted()), "capacity 16 admits all 10");

    // Let work pile up in flight, then drain. Each query needs >= 150 ms of
    // mandatory sleep (20 graphs x 30 ms on 4 workers), so the 120 ms drain
    // window cannot clear the backlog: the drain path must shed and cancel.
    std::thread::sleep(Duration::from_millis(50));
    let report = service.shutdown();

    let mut finished = 0u64;
    let mut shed = 0u64;
    for (i, (ticket, _)) in tickets.iter().enumerate() {
        let (outcome, _) = ticket
            .try_get()
            .unwrap_or_else(|| panic!("query {i} has no terminal status after shutdown"));
        if outcome.status.is_shed() {
            shed += 1;
        } else {
            // Executed: completed, or cancelled into an interrupt status.
            assert!(
                outcome.status.is_completed()
                    || outcome.status.is_timed_out()
                    || outcome.status.is_exhausted(),
                "query {i}: non-terminal-looking status {:?}",
                outcome.status
            );
            finished += 1;
        }
    }
    assert_eq!(finished, report.finished, "ticket statuses must match the drain report");
    assert_eq!(shed, report.shed_at_drain);
    assert_eq!(finished + shed, queries.len() as u64, "every admitted query is terminal");
    assert!(report.shed_at_drain > 0, "overload drain must have shed backlog");
    assert!(!report.drained_within_deadline);

    // No leaked worker threads: pool workers and executor are all joined.
    #[cfg(target_os = "linux")]
    assert_eq!(threads_with_prefix(prefix), 0, "service threads must be joined");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// I8 extension (acceptance): the full serving behavior — admission and
    /// shed decisions, statuses, answers, failure attribution, breaker
    /// transitions, health counters — is byte-identical across 1/2/4/8
    /// worker threads, for arbitrary panic-only fault schedules.
    ///
    /// Panic-only faults keep per-graph attribution exact (timeout/exhaust
    /// faults cancel whole scans, which is legitimately thread-dependent);
    /// the 45 s budget with a 1 s/graph shed estimate makes shedding purely
    /// predictive — wall-clock never intrudes.
    #[test]
    fn prop_serving_decisions_identical_across_thread_counts(
        seed in 0u64..1000,
        panics in 150u32..400,
    ) {
        let (db, queries) = fixture();
        let runs: Vec<Vec<String>> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                let chaos = ChaosConfig::new(seed).with_panics(panics);
                let matcher: Arc<dyn Matcher> =
                    Arc::new(ChaosMatcher::new(Arc::new(Cfql::new()), chaos));
                let runner = RunnerConfig {
                    query_budget: Some(Duration::from_secs(45)),
                    ..RunnerConfig::default()
                };
                let service = QueryService::new(
                    matcher,
                    Arc::clone(&db),
                    ServiceConfig {
                        threads,
                        runner,
                        breaker: BreakerConfig { fault_threshold: 2, cooldown: 3 },
                        queue_capacity: 64,
                        shed: Some(ShedPolicy { est_cost_per_graph: Duration::from_secs(1) }),
                        thread_prefix: format!("det{threads}"),
                        ..Default::default()
                    },
                );
                let mut log = Vec::new();
                for round in 0..3 {
                    let tickets = service.submit_batch(&queries);
                    for (i, (ticket, admission)) in tickets.iter().enumerate() {
                        let (outcome, retries) = ticket.wait();
                        log.push(format!(
                            "r{round} q{i} {admission:?} {:?} {:?} {retries} {:?}",
                            outcome.status, outcome.answers, outcome.failures
                        ));
                    }
                }
                let h = service.health();
                log.push(format!(
                    "admitted={} finished={} shed_qf={} shed_dl={} trips={} open={} quarantined={}",
                    h.admitted, h.finished, h.shed_queue_full, h.shed_deadline,
                    h.breaker_trips, h.open_breakers, h.quarantined_graph_results
                ));
                for t in service.breaker_transitions() {
                    log.push(format!("t{} {:?} {:?}->{:?}", t.tick, t.graph, t.from, t.to));
                }
                log
            })
            .collect();
        for pair in runs.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }
}
