//! Deterministic chaos suite for the fault-tolerant execution layer
//! (DESIGN.md "Failure semantics", invariant I8):
//!
//! * for any injected fault set, every **non-faulted** query returns answers
//!   byte-identical to a fault-free run, at every thread count;
//! * every query with an injected fault carries a non-`Completed`
//!   [`QueryStatus`] matching the fault kind, and panic faults are attributed
//!   to the exact (query, graph) pairs they were planned for;
//! * the run always completes — a panic in one pair never takes down the
//!   pool, the runner, or sibling queries;
//! * panics never count toward `abort_after_timeouts`;
//! * the query cache never stores a faulted outcome.
//!
//! All fault decisions are pure functions of `(seed, query, graph)` — see
//! `ChaosMatcher` — so every assertion here is exact, not statistical.
//! EXPERIMENTS.md lists the seed matrix this suite pins.

use std::sync::Arc;

use proptest::prelude::*;

use subgraph_query::core::chaos::graph_fingerprint;
use subgraph_query::core::prelude::*;
use subgraph_query::datagen::graphgen;
use subgraph_query::datagen::query::{generate_query_set, QueryGenMethod, QuerySetSpec};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphDb};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::{
    Deadline, FilterResult, Matcher, ResourceGuard, ResourceLimits, Timeout,
};

/// The pinned chaos seed (see EXPERIMENTS.md "Chaos suite").
const CHAOS_SEED: u64 = 1001;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// 20 data graphs × 10 queries = 200 (query, graph) pairs.
fn fixture() -> (Arc<GraphDb>, Vec<Graph>) {
    let db = Arc::new(graphgen::generate(20, 16, 4, 3.0, 7));
    let spec = QuerySetSpec { edges: 4, method: QueryGenMethod::RandomWalk, count: 10 };
    let queries = generate_query_set(&db, spec, 11);
    assert_eq!(queries.len(), 10);
    // Fault keys are structural fingerprints; the fixture must not collide.
    let mut fps: Vec<u64> =
        db.graphs().iter().chain(queries.iter()).map(graph_fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), db.len() + queries.len(), "fingerprint collision in fixture");
    (db, queries)
}

/// The standard fault mix: 18% of pairs faulted (panic/timeout/exhaust).
fn chaos_config() -> ChaosConfig {
    ChaosConfig::new(CHAOS_SEED).with_panics(80).with_timeouts(40).with_exhaustion(60)
}

fn chaos_matcher(config: ChaosConfig) -> Arc<dyn Matcher> {
    Arc::new(ChaosMatcher::new(Arc::new(Cfql::new()), config))
}

/// Per-query fault plan, derived without running anything.
fn fault_plan(
    config: ChaosConfig,
    db: &GraphDb,
    queries: &[Graph],
) -> Vec<Vec<(GraphId, FaultKind)>> {
    let probe = ChaosMatcher::new(Arc::new(Cfql::new()), config);
    queries
        .iter()
        .map(|q| {
            db.iter().filter_map(|(id, g)| probe.planned_fault(q, g).map(|k| (id, k))).collect()
        })
        .collect()
}

/// Fault-free reference run: plain CFQL on a single-threaded pool.
fn baseline(db: &Arc<GraphDb>, queries: &[Graph]) -> Vec<QueryOutcome> {
    let pool = QueryPool::new(1);
    let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
    queries
        .iter()
        .map(|q| pool.query(Arc::clone(&matcher), db, q, Deadline::none()).outcome)
        .collect()
}

#[test]
fn fault_plan_covers_at_least_ten_percent_of_pairs() {
    let (db, queries) = fixture();
    let plan = fault_plan(chaos_config(), &db, &queries);
    let total = db.len() * queries.len();
    let faulted: usize = plan.iter().map(Vec::len).sum();
    assert!(faulted * 10 >= total, "chaos config must fault >=10% of pairs: {faulted}/{total}");
    assert!(
        plan.iter().any(Vec::is_empty),
        "fixture needs fault-free queries for the I8 comparison"
    );
    assert!(
        plan.iter().flatten().any(|(_, k)| *k == FaultKind::Panic),
        "fixture needs at least one panic fault"
    );
}

/// The tentpole invariant. For every thread count:
/// * fault-free queries are byte-identical to the baseline;
/// * panic-only queries lose exactly the faulted graphs, keep every other
///   answer, and attribute each planned pair in `failures`;
/// * timeout/exhaust queries surface the matching status.
#[test]
fn i5_injected_faults_never_perturb_nonfaulted_queries() {
    let (db, queries) = fixture();
    let base = baseline(&db, &queries);
    let config = chaos_config();
    let plan = fault_plan(config, &db, &queries);

    for threads in THREAD_COUNTS {
        let pool = QueryPool::new(threads);
        let matcher = chaos_matcher(config);
        let guard = ResourceGuard::new();
        for (i, q) in queries.iter().enumerate() {
            guard.reset(ResourceLimits::unlimited());
            let d = Deadline::none().with_guard(guard);
            let out = pool.query(Arc::clone(&matcher), &db, q, d).outcome;
            let ctx = format!("query {i} at {threads} threads");

            if plan[i].is_empty() {
                assert_eq!(out.answers, base[i].answers, "{ctx}: answers must be identical");
                assert!(out.status.is_completed(), "{ctx}: {:?}", out.status);
                assert!(out.failures.is_empty(), "{ctx}");
                assert_eq!(out.candidates, base[i].candidates, "{ctx}");
                continue;
            }

            assert!(!out.status.is_completed(), "{ctx}: faulted query cannot complete");
            let kinds: Vec<FaultKind> = plan[i].iter().map(|(_, k)| *k).collect();
            if kinds.iter().all(|k| *k == FaultKind::Panic) {
                // Panic isolation: every sibling graph still answers.
                let faulted: Vec<GraphId> = plan[i].iter().map(|(g, _)| *g).collect();
                let expected: Vec<GraphId> =
                    base[i].answers.iter().copied().filter(|g| !faulted.contains(g)).collect();
                assert_eq!(out.answers, expected, "{ctx}: sibling answers must survive");
                assert!(out.status.is_panicked(), "{ctx}: {:?}", out.status);
                let mut attributed: Vec<GraphId> = out.failures.iter().map(|f| f.graph).collect();
                attributed.sort_unstable_by_key(|g| g.0);
                assert_eq!(attributed, faulted, "{ctx}: exact panic attribution");
                for f in &out.failures {
                    assert!(f.status.is_panicked(), "{ctx}: {:?}", f.status);
                }
            } else if kinds.contains(&FaultKind::Panic) {
                // Mixed plans still surface the worst severity.
                assert!(
                    out.status.is_panicked()
                        || out.status.is_exhausted()
                        || out.status.is_timed_out(),
                    "{ctx}: {:?}",
                    out.status
                );
            } else if kinds.iter().all(|k| *k == FaultKind::Timeout) {
                assert!(out.status.is_timed_out(), "{ctx}: {:?}", out.status);
            } else if kinds.iter().all(|k| *k == FaultKind::Exhaust) {
                assert!(out.status.is_exhausted(), "{ctx}: {:?}", out.status);
            } else {
                // Timeout + exhaust mix: whichever interrupt is observed first.
                assert!(
                    out.status.is_timed_out() || out.status.is_exhausted(),
                    "{ctx}: {:?}",
                    out.status
                );
            }
            // Interrupted enumerations may be partial but never fabricate.
            for a in &out.answers {
                assert!(base[i].answers.contains(a), "{ctx}: fabricated answer {a:?}");
            }
        }
    }
}

/// The runner survives the full chaos mix end to end and its rollups agree
/// with the fault plan, at every thread count.
#[test]
fn runner_completes_chaos_run_with_correct_rollups() {
    let (db, queries) = fixture();
    let config = chaos_config();
    let plan = fault_plan(config, &db, &queries);
    let expect_failed = plan.iter().filter(|p| !p.is_empty()).count();
    // A panic pair is always observed (processing continues past it) unless a
    // timeout/exhaust fault in the same query stopped the shard first — so the
    // Panicked rollup is exact for pure-panic plans and bounded for mixed ones.
    let pure_panic = plan
        .iter()
        .filter(|p| !p.is_empty() && p.iter().all(|(_, k)| *k == FaultKind::Panic))
        .count();
    let any_panic = plan.iter().filter(|p| p.iter().any(|(_, k)| *k == FaultKind::Panic)).count();

    for threads in THREAD_COUNTS {
        let pool = QueryPool::new(threads);
        let report = run_query_set_parallel(
            &pool,
            chaos_matcher(config),
            &db,
            "Chaos",
            "chaos",
            &queries,
            RunnerConfig::default(),
        );
        assert_eq!(report.records.len(), queries.len(), "{threads} threads: run must complete");
        assert_eq!(report.failure_count(), expect_failed, "{threads} threads");
        assert!(
            (pure_panic..=any_panic).contains(&report.panic_count()),
            "{threads} threads: panic_count {} outside [{pure_panic}, {any_panic}]",
            report.panic_count()
        );
        for (i, rec) in report.records.iter().enumerate() {
            assert_eq!(rec.status.is_completed(), plan[i].is_empty(), "query {i}");
            if !plan[i].is_empty() {
                assert!(!rec.failures.is_empty(), "query {i}: faults must be recorded");
            }
            if !plan[i].is_empty() && plan[i].iter().all(|(_, k)| *k == FaultKind::Panic) {
                assert!(rec.status.is_panicked(), "query {i}: {:?}", rec.status);
            }
        }
    }
}

/// Panics are a distinct failure class: `abort_after_timeouts` must ignore
/// them, and a timeout-only chaos run must still trip it.
#[test]
fn abort_after_timeouts_counts_timeouts_not_panics() {
    let (db, queries) = fixture();
    let pool = QueryPool::new(4);
    let config = RunnerConfig { abort_after_timeouts: Some(1), ..RunnerConfig::default() };

    // Panic-heavy, zero timeouts: the runner must visit every query.
    let panicky = ChaosConfig::new(CHAOS_SEED).with_panics(400);
    let report = run_query_set_parallel(
        &pool,
        chaos_matcher(panicky),
        &db,
        "Chaos",
        "panics",
        &queries,
        config,
    );
    assert!(report.panic_count() >= 2, "fixture should panic several queries");
    assert_eq!(report.records.len(), queries.len(), "panics must not trigger the abort");
    assert_eq!(report.timeout_count(), 0);

    // Timeout-heavy: the 40%-rule abort still works.
    let slow = ChaosConfig::new(CHAOS_SEED).with_timeouts(400);
    let report = run_query_set_parallel(
        &pool,
        chaos_matcher(slow),
        &db,
        "Chaos",
        "timeouts",
        &queries,
        config,
    );
    assert!(report.timeout_count() >= 1);
    assert!(report.records.len() < queries.len(), "timeouts must trigger the abort");
}

/// Satellite (c): the cache stores completed outcomes only, before and after
/// a chaos run, and faulted queries are re-executed rather than served.
#[test]
fn cache_never_stores_faulted_outcomes() {
    let (db, queries) = fixture();
    let config = ChaosConfig::new(CHAOS_SEED).with_panics(120).with_exhaustion(80);
    let plan = fault_plan(config, &db, &queries);
    let expect_completed = plan.iter().filter(|p| p.is_empty()).count();
    assert!(expect_completed > 0 && expect_completed < queries.len());

    let mut cached = CachedEngine::new(Box::new(chaos_engine(config)), 64);
    cached.build(&db).expect("build");
    for (i, q) in queries.iter().enumerate() {
        let (out, _) = cached.query(q);
        assert_eq!(out.status.is_completed(), plan[i].is_empty(), "query {i}");
    }
    assert_eq!(cached.len(), expect_completed, "cache must hold completed outcomes only");

    // Second pass: completed queries are served from cache; faulted queries
    // miss, re-execute, and fault deterministically again.
    for (i, q) in queries.iter().enumerate() {
        let (out, hit) = cached.query(q);
        if plan[i].is_empty() {
            assert_eq!(hit, CacheHit::Exact, "query {i}");
            assert!(out.status.is_completed());
        } else {
            assert_eq!(hit, CacheHit::Miss, "query {i}");
            assert!(!out.status.is_completed());
        }
    }
    assert_eq!(cached.len(), expect_completed, "faulted reruns must not pollute the cache");
}

/// A matcher that panics on exactly one (query, graph) pair, identified by
/// structural fingerprint — the targeted form of `ChaosMatcher`.
struct PanicPair {
    inner: Cfql,
    q_fp: u64,
    g_fp: u64,
}

impl Matcher for PanicPair {
    fn name(&self) -> &'static str {
        "panic-pair"
    }
    fn filter(&self, q: &Graph, g: &Graph, deadline: Deadline) -> Result<FilterResult, Timeout> {
        if graph_fingerprint(q) == self.q_fp && graph_fingerprint(g) == self.g_fp {
            panic!("targeted injected panic");
        }
        self.inner.filter(q, g, deadline)
    }
    fn find_first(
        &self,
        q: &Graph,
        g: &Graph,
        space: &subgraph_query::matching::CandidateSpace,
        deadline: Deadline,
    ) -> Result<Option<subgraph_query::matching::Embedding>, Timeout> {
        self.inner.find_first(q, g, space, deadline)
    }
    fn enumerate(
        &self,
        q: &Graph,
        g: &Graph,
        space: &subgraph_query::matching::CandidateSpace,
        limit: u64,
        deadline: Deadline,
        on_match: &mut dyn FnMut(&subgraph_query::matching::Embedding),
    ) -> Result<u64, Timeout> {
        self.inner.enumerate(q, g, space, limit, deadline, on_match)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite (d): a panic injected at a random (query, graph, threads)
    /// coordinate never changes any other record's answers or status.
    #[test]
    fn prop_single_panic_is_isolated(
        qi in 0usize..10,
        gi in 0u32..20,
        threads in 1usize..=8,
    ) {
        let (db, queries) = fixture();
        let base = baseline(&db, &queries);
        let target = GraphId(gi);
        let matcher: Arc<dyn Matcher> = Arc::new(PanicPair {
            inner: Cfql::new(),
            q_fp: graph_fingerprint(&queries[qi]),
            g_fp: graph_fingerprint(&db.graphs()[gi as usize]),
        });
        let pool = QueryPool::new(threads);
        for (i, q) in queries.iter().enumerate() {
            let out = pool.query(Arc::clone(&matcher), &db, q, Deadline::none()).outcome;
            if i == qi {
                let expected: Vec<GraphId> =
                    base[i].answers.iter().copied().filter(|g| *g != target).collect();
                prop_assert_eq!(&out.answers, &expected);
                prop_assert!(out.status.is_panicked());
                prop_assert_eq!(out.failures.len(), 1);
                prop_assert_eq!(out.failures[0].graph, target);
            } else {
                prop_assert_eq!(&out.answers, &base[i].answers);
                prop_assert!(out.status.is_completed());
                prop_assert!(out.failures.is_empty());
            }
        }
    }
}
