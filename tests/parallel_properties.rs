//! Property-based tests of the parallel query layer (DESIGN.md §2.4):
//!
//! * I4 — for every database, query and thread count, [`QueryPool`] returns
//!   exactly the sequential engine's sorted answer set and candidate count;
//! * cancellation — a zero budget flags the outcome `timed_out` and returns
//!   promptly instead of grinding through the whole database.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use subgraph_query::core::engines::CfqlEngine;
use subgraph_query::core::parallel::{parallel_query, QueryPool};
use subgraph_query::core::QueryEngine;
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphBuilder, GraphDb, Label, VertexId};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::{brute, Deadline};

/// Brute-force database-level oracle: every graph containing `q`.
fn brute_answers(db: &GraphDb, q: &Graph) -> Vec<GraphId> {
    db.iter().filter(|(_, g)| brute::is_subgraph(q, g)).map(|(id, _)| id).collect()
}

/// Strategy: a random labeled graph with up to `max_v` vertices.
fn arb_graph(max_v: usize, max_e: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        let vertex_labels = proptest::collection::vec(0..labels, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_e);
        (vertex_labels, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

/// Strategy: a database of random graphs plus a connected query carved from
/// one of them (so the query usually has non-empty answers).
fn arb_db_and_query() -> impl Strategy<Value = (Arc<GraphDb>, Graph)> {
    (proptest::collection::vec(arb_graph(8, 14, 3), 1..12), any::<u64>()).prop_map(
        |(graphs, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            let host = graphs[(seed % graphs.len() as u64) as usize].clone();
            let q = brute::random_connected_query(&mut rng, &host, 3);
            (Arc::new(GraphDb::from_graphs(graphs)), q)
        },
    )
}

proptest! {
    /// I4: the pool's answers and candidate counts are identical to the
    /// sequential CFQL engine's for every thread count.
    #[test]
    fn pool_equals_sequential_engine((db, q) in arb_db_and_query()) {
        let mut seq = CfqlEngine::new();
        seq.build(&db).unwrap();
        let expected = seq.query(&q);

        for threads in [1usize, 2, 4, 8] {
            let pool = QueryPool::new(threads);
            let got = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
            prop_assert_eq!(&got.outcome.answers, &expected.answers, "{} threads", threads);
            prop_assert_eq!(got.outcome.candidates, expected.candidates, "{} threads", threads);
            prop_assert!(!got.outcome.timed_out());
        }
    }

    /// The legacy static-partitioning fan-out obeys the same invariant.
    #[test]
    fn legacy_parallel_equals_sequential((db, q) in arb_db_and_query()) {
        let mut seq = CfqlEngine::new();
        seq.build(&db).unwrap();
        let expected = seq.query(&q);
        let cfql = Cfql::new();
        for threads in [2usize, 4] {
            let got = parallel_query(&cfql, &db, &q, threads, Deadline::none());
            prop_assert_eq!(&got.outcome.answers, &expected.answers, "{} threads", threads);
            prop_assert_eq!(got.outcome.candidates, expected.candidates, "{} threads", threads);
        }
    }

    /// Answers also agree with the brute-force oracle over the database.
    #[test]
    fn pool_matches_brute_oracle((db, q) in arb_db_and_query()) {
        let expected = brute_answers(&db, &q);
        let pool = QueryPool::new(4);
        let got = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
        prop_assert_eq!(got.outcome.answers, expected);
    }
}

/// A zero budget cancels every worker: the query returns promptly (well
/// within one tick interval of matcher work) and is flagged `timed_out`.
#[test]
fn zero_budget_cancels_all_workers_promptly() {
    // Large-ish dense graphs so an uncancelled sweep would take visible time.
    let graphs: Vec<Graph> = (0..64)
        .map(|i| {
            let mut b = GraphBuilder::new();
            for v in 0..60 {
                b.add_vertex(Label((v + i) % 5));
            }
            for u in 0..60u32 {
                for d in 1..=4u32 {
                    let _ = b.add_edge(VertexId(u), VertexId((u + d) % 60));
                }
            }
            b.build()
        })
        .collect();
    let db = Arc::new(GraphDb::from_graphs(graphs));
    let mut b = GraphBuilder::new();
    for v in 0..6 {
        b.add_vertex(Label(v % 5));
    }
    for u in 0..5u32 {
        let _ = b.add_edge(VertexId(u), VertexId(u + 1));
    }
    let q = b.build();

    let pool = QueryPool::new(4);
    let t0 = Instant::now();
    let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::after(Duration::ZERO));
    let elapsed = t0.elapsed();
    assert!(r.outcome.timed_out(), "zero budget must flag a timeout");
    // Workers observe the expired deadline at their next per-graph check;
    // the generous bound only guards against a full uncancelled sweep.
    assert!(elapsed < Duration::from_secs(5), "cancellation took {elapsed:?}");

    // The same pool then completes an unbudgeted query correctly.
    let ok = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none());
    assert!(!ok.outcome.timed_out());
}
