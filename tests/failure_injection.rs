//! Failure-injection tests: every engine must degrade gracefully — never
//! panic, never fabricate answers — under hostile budgets and degenerate
//! inputs.

use std::sync::Arc;
use std::time::Duration;

use subgraph_query::core::engines::all_engines;
use subgraph_query::core::prelude::*;
use subgraph_query::datagen::graphgen;
use subgraph_query::graph::{Graph, GraphBuilder, GraphDb, Label, VertexId};
use subgraph_query::index::BuildBudget;

fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    for &l in labels {
        b.add_vertex(Label(l));
    }
    for &(u, v) in edges {
        b.add_edge(VertexId(u), VertexId(v)).unwrap();
    }
    b.build()
}

#[test]
fn zero_query_budget_flags_timeout_everywhere() {
    let db = Arc::new(graphgen::generate(10, 20, 4, 3.0, 5));
    let q = labeled(&[0, 1], &[(0, 1)]);
    for mut engine in all_engines() {
        engine.build(&db).expect("small build");
        engine.set_query_budget(Some(Duration::from_nanos(0)));
        let out = engine.query(&q);
        // Either the engine noticed the expired deadline, or the query was
        // trivially finished before the first check — both are acceptable;
        // partial answers must never exceed the true answer set.
        if !out.timed_out() {
            continue;
        }
        let mut reference = CfqlEngine::new();
        reference.build(&db).unwrap();
        let truth = reference.query(&q).answers;
        for a in &out.answers {
            assert!(truth.contains(a), "{} fabricated {a:?}", engine.name());
        }
    }
}

#[test]
fn impossible_memory_budget_fails_builds_not_panics() {
    let db = Arc::new(graphgen::generate(5, 15, 3, 3.0, 6));
    for mut engine in all_engines() {
        engine.set_build_budget(BuildBudget::unlimited().with_memory(1));
        let result = engine.build(&db);
        match engine.category() {
            EngineCategory::VcFv => assert!(result.is_ok(), "{} builds nothing", engine.name()),
            _ => assert!(result.is_err(), "{} should hit OOM", engine.name()),
        }
    }
}

#[test]
fn single_vertex_queries_work() {
    let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)]), labeled(&[2], &[])]));
    let q = labeled(&[2], &[]);
    for mut engine in all_engines() {
        engine.build(&db).expect("small build");
        let out = engine.query(&q);
        assert_eq!(
            out.answers,
            vec![subgraph_query::graph::database::GraphId(1)],
            "{}",
            engine.name()
        );
    }
}

#[test]
fn empty_database_yields_empty_answers() {
    let db = Arc::new(GraphDb::new());
    let q = labeled(&[0, 1], &[(0, 1)]);
    for mut engine in all_engines() {
        engine.build(&db).expect("empty build");
        let out = engine.query(&q);
        assert!(out.answers.is_empty(), "{}", engine.name());
        assert_eq!(out.candidates, 0, "{}", engine.name());
    }
}

#[test]
fn query_equal_to_data_graph() {
    // Self-containment: every graph contains itself.
    let g = labeled(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let db = Arc::new(GraphDb::from_graphs(vec![g.clone()]));
    for mut engine in all_engines() {
        engine.build(&db).expect("small build");
        let out = engine.query(&g);
        assert_eq!(out.answers.len(), 1, "{}", engine.name());
    }
}

#[test]
fn query_larger_than_every_data_graph() {
    let db = Arc::new(GraphDb::from_graphs(vec![labeled(&[0, 1], &[(0, 1)])]));
    let q = labeled(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
    for mut engine in all_engines() {
        engine.build(&db).expect("small build");
        assert!(engine.query(&q).answers.is_empty(), "{}", engine.name());
    }
}

#[test]
fn repeated_queries_are_deterministic() {
    let db = Arc::new(graphgen::generate(30, 25, 5, 4.0, 7));
    let q = labeled(&[0, 1, 2], &[(0, 1), (1, 2)]);
    for mut engine in all_engines() {
        engine.build(&db).expect("small build");
        let a = engine.query(&q);
        let b = engine.query(&q);
        assert_eq!(a.answers, b.answers, "{}", engine.name());
        assert_eq!(a.candidates, b.candidates, "{}", engine.name());
    }
}
