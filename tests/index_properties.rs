//! Property-based tests of the index invariants (DESIGN.md §5, I5):
//!
//! * index candidate sets are sound: `C(q) ⊇ A(q)` for all three indices;
//! * Grapes (count-aware) candidates are a subset of GGSX (existence)
//!   candidates on identical feature sets;
//! * path-feature counts of a carved query are dominated by its source
//!   graph's counts.

use proptest::prelude::*;

use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphBuilder, GraphDb, Label, VertexId};
use subgraph_query::index::path_enum::path_counts;
use subgraph_query::index::{
    BuildBudget, CtIndexConfig, FingerprintIndex, GgsxIndex, GrapesConfig, GraphIndex,
    PathTrieIndex,
};
use subgraph_query::matching::brute;

fn arb_db(graphs: usize) -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..3, 2..8),
            proptest::collection::vec((0usize..8, 0usize..8), 0..12),
        ),
        1..=graphs,
    )
    .prop_map(|specs| {
        let graphs = specs
            .into_iter()
            .map(|(labels, edges)| {
                let mut b = GraphBuilder::new();
                let n = labels.len();
                for l in labels {
                    b.add_vertex(Label(l));
                }
                for (u, v) in edges {
                    let (u, v) = (u % n, v % n);
                    if u != v {
                        let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                    }
                }
                b.build()
            })
            .collect();
        GraphDb::from_graphs(graphs)
    })
}

fn arb_query() -> impl Strategy<Value = Graph> {
    (arb_db(1), any::<u64>()).prop_map(|(db, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        brute::random_connected_query(&mut rng, &db.graphs()[0], 3)
    })
}

fn answer_set(db: &GraphDb, q: &Graph) -> Vec<GraphId> {
    db.iter().filter(|(_, g)| brute::is_subgraph(q, g)).map(|(id, _)| id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// I5: every index's candidate set contains the answer set.
    #[test]
    fn index_candidates_are_sound(db in arb_db(8), q in arb_query()) {
        let budget = BuildBudget::unlimited();
        let answers = answer_set(&db, &q);

        let grapes = PathTrieIndex::build(&db, GrapesConfig::default(), &budget).unwrap();
        let ggsx = GgsxIndex::build(&db, 4, &budget).unwrap();
        let ct = FingerprintIndex::build(&db, CtIndexConfig::default(), &budget).unwrap();

        for index in [&grapes as &dyn GraphIndex, &ggsx, &ct] {
            let cands = index.candidates(&q).into_ids(db.len());
            for a in &answers {
                prop_assert!(
                    cands.contains(a),
                    "{} dropped answer graph {:?}", index.name(), a
                );
            }
        }
    }

    /// Count-aware Grapes filtering is at least as strong as GGSX's
    /// existence filtering (same path features).
    #[test]
    fn grapes_no_weaker_than_ggsx(db in arb_db(8), q in arb_query()) {
        let budget = BuildBudget::unlimited();
        let grapes = PathTrieIndex::build(&db, GrapesConfig::default(), &budget).unwrap();
        let ggsx = GgsxIndex::build(&db, 4, &budget).unwrap();
        let gc = grapes.candidates(&q).into_ids(db.len());
        let xc = ggsx.candidates(&q).into_ids(db.len());
        for c in &gc {
            prop_assert!(xc.contains(c), "Grapes kept {c:?} that GGSX pruned");
        }
    }

    /// Subgraph path-feature counts are dominated by the source graph's —
    /// the invariant that makes Grapes' count filtering sound.
    #[test]
    fn carved_query_counts_dominated(db in arb_db(1), seed in any::<u64>()) {
        let g = &db.graphs()[0];
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let carved = brute::random_connected_query(&mut rng, g, 3);
        let budget = BuildBudget::unlimited();
        let cq = path_counts(&carved, 4, &budget).unwrap();
        let cg = path_counts(g, 4, &budget).unwrap();
        for (k, &c) in &cq {
            prop_assert!(cg.get(k).copied().unwrap_or(0) >= c);
        }
    }
}
