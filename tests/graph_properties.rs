//! Property-based tests of the graph substrate (invariant I6 and friends):
//! CSR well-formedness, text/binary IO round-trips, k-core agreement with a
//! naive peeler, and BFS-tree structural invariants.

use proptest::prelude::*;

use subgraph_query::graph::algo::{connected_components, core_numbers, BfsTree};
use subgraph_query::graph::{binio, io, Graph, GraphBuilder, GraphDb, Label, VertexId};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..12).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..5, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..24);
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

fn arb_db() -> impl Strategy<Value = GraphDb> {
    proptest::collection::vec(arb_graph(), 0..6).prop_map(GraphDb::from_graphs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// I6: sorted adjacency, symmetry, no loops, degree/edge consistency.
    #[test]
    fn csr_well_formed(g in arb_graph()) {
        let mut directed = 0usize;
        for v in g.vertices() {
            let adj = g.neighbors(v);
            prop_assert_eq!(adj.len(), g.degree(v));
            directed += adj.len();
            for w in adj.windows(2) {
                prop_assert!((g.label(w[0]), w[0]) < (g.label(w[1]), w[1]));
            }
            for &w in adj {
                prop_assert_ne!(w, v, "self loop");
                prop_assert!(g.neighbors(w).contains(&v), "asymmetric edge");
                prop_assert!(g.has_edge(v, w) && g.has_edge(w, v));
            }
        }
        prop_assert_eq!(directed, 2 * g.edge_count());
    }

    /// The label index partitions the vertex set.
    #[test]
    fn label_index_partitions(g in arb_graph()) {
        let mut seen = vec![false; g.vertex_count()];
        for l in 0..g.label_space() as u32 {
            for &v in g.vertices_with_label(Label(l)) {
                prop_assert_eq!(g.label(v), Label(l));
                prop_assert!(!seen[v.index()]);
                seen[v.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// `neighbors_with_label` returns exactly the label-filtered adjacency.
    #[test]
    fn label_restricted_adjacency(g in arb_graph()) {
        for v in g.vertices() {
            for l in 0..g.label_space() as u32 {
                let fast: Vec<VertexId> = g.neighbors_with_label(v, Label(l)).to_vec();
                let slow: Vec<VertexId> = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| g.label(w) == Label(l))
                    .collect();
                prop_assert_eq!(fast, slow);
            }
        }
    }

    /// Text IO round-trips any database byte-equivalently at the graph level.
    #[test]
    fn text_io_round_trip(db in arb_db()) {
        let mut buf = Vec::new();
        io::write_database(&mut buf, &db).unwrap();
        let db2 = io::read_database(buf.as_slice()).unwrap();
        prop_assert_eq!(db.len(), db2.len());
        for (a, b) in db.graphs().iter().zip(db2.graphs()) {
            prop_assert_eq!(a.vertex_count(), b.vertex_count());
            prop_assert_eq!(a.edge_count(), b.edge_count());
            for v in a.vertices() {
                prop_assert_eq!(a.label(v), b.label(v));
                prop_assert_eq!(a.neighbors(v), b.neighbors(v));
            }
        }
    }

    /// Binary IO round-trips any database.
    #[test]
    fn binary_io_round_trip(db in arb_db()) {
        let bytes = binio::to_bytes(&db);
        let db2 = binio::from_bytes(bytes).unwrap();
        prop_assert_eq!(db.len(), db2.len());
        for (a, b) in db.graphs().iter().zip(db2.graphs()) {
            for v in a.vertices() {
                prop_assert_eq!(a.label(v), b.label(v));
                prop_assert_eq!(a.neighbors(v), b.neighbors(v));
            }
        }
    }

    /// Core numbers agree with naive iterative peeling at every k.
    #[test]
    fn core_numbers_match_naive(g in arb_graph()) {
        let cores = core_numbers(&g);
        // Naive: for each k, peel vertices of degree < k repeatedly.
        let max_k = cores.iter().copied().max().unwrap_or(0);
        for k in 0..=max_k + 1 {
            let mut alive = vec![true; g.vertex_count()];
            loop {
                let mut changed = false;
                for v in g.vertices() {
                    if alive[v.index()] {
                        let deg = g
                            .neighbors(v)
                            .iter()
                            .filter(|w| alive[w.index()])
                            .count() as u32;
                        if deg < k {
                            alive[v.index()] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in g.vertices() {
                prop_assert_eq!(
                    alive[v.index()],
                    cores[v.index()] >= k,
                    "vertex {:?} at k={}", v, k
                );
            }
        }
    }

    /// BFS trees: parent levels, level partition, component coverage.
    #[test]
    fn bfs_tree_invariants(g in arb_graph()) {
        prop_assume!(g.vertex_count() > 0);
        let (comp, _) = connected_components(&g);
        // Build the tree on the component of vertex 0 only (BfsTree requires
        // connected input): restrict via an induced copy.
        let verts: Vec<VertexId> =
            g.vertices().filter(|v| comp[v.index()] == comp[0]).collect();
        let mut b = GraphBuilder::new();
        let mut map = vec![usize::MAX; g.vertex_count()];
        for (i, &v) in verts.iter().enumerate() {
            map[v.index()] = i;
            b.add_vertex(g.label(v));
        }
        for &v in &verts {
            for &w in g.neighbors(v) {
                if v < w && map[w.index()] != usize::MAX {
                    let _ = b.add_edge(
                        VertexId::from(map[v.index()]),
                        VertexId::from(map[w.index()]),
                    );
                }
            }
        }
        let sub = b.build();
        let tree = BfsTree::build(&sub, VertexId(0));
        prop_assert_eq!(tree.order().len(), sub.vertex_count());
        for v in sub.vertices() {
            if v != tree.root() {
                let p = tree.parent(v);
                prop_assert!(sub.has_edge(v, p));
                prop_assert_eq!(tree.level(v), tree.level(p) + 1);
            }
        }
        // BFS property: every edge spans at most one level.
        for v in sub.vertices() {
            for &w in sub.neighbors(v) {
                prop_assert!(tree.level(v).abs_diff(tree.level(w)) <= 1);
            }
        }
    }
}
