//! Property-based tests of the wire protocol (DESIGN.md "Distributed
//! serving"): every frame round-trips bit-exactly through encode/decode
//! and through a byte stream, and every *damaged* frame — truncated at any
//! byte, any single bit flipped, or mangled by the [`WireChaos`] plan —
//! fails **closed** with a structured checksum/framing error. Nothing in
//! this suite is allowed to panic or allocate for a hostile length.

use proptest::prelude::*;

use subgraph_query::core::engine::{GraphFailure, QueryStatus};
use subgraph_query::core::wire::{
    decode_frame, encode_frame, read_frame, write_frame, Message, PeerRole, WireChaos,
    WireChaosConfig, WireConfig, WireError, WireOutcome, WIRE_VERSION,
};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::error::GraphError;
use subgraph_query::graph::{Graph, GraphBuilder, Label, VertexId};
use subgraph_query::matching::{KernelStats, PhaseStats, ResourceKind, PHASE_COUNT};

fn arb_string(max: usize) -> impl Strategy<Value = String> {
    collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap_or_default())
}

fn arb_status() -> BoxedStrategy<QueryStatus> {
    (0u8..9, arb_string(24))
        .prop_map(|(pick, message)| match pick {
            0 => QueryStatus::Completed,
            1 => QueryStatus::TimedOut,
            2 => QueryStatus::ResourceExhausted { kind: ResourceKind::Steps },
            3 => QueryStatus::ResourceExhausted { kind: ResourceKind::Memory },
            4 => QueryStatus::Quarantined,
            5 => QueryStatus::Panicked { message },
            6 => QueryStatus::Wedged,
            7 => QueryStatus::Unavailable,
            _ => QueryStatus::Shed,
        })
        .boxed()
}

fn arb_graph() -> BoxedStrategy<Graph> {
    (1usize..10)
        .prop_flat_map(|n| {
            let labels = collection::vec(0u32..5, n);
            let edges = collection::vec((0..n, 0..n), 0..16);
            (labels, edges).prop_map(|(ls, es)| {
                let mut b = GraphBuilder::new();
                for l in ls {
                    b.add_vertex(Label(l));
                }
                for (u, v) in es {
                    if u != v {
                        let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                    }
                }
                b.build()
            })
        })
        .boxed()
}

fn arb_outcome() -> BoxedStrategy<WireOutcome> {
    let failures = collection::vec(
        (any::<u32>(), arb_status())
            .prop_map(|(g, status)| GraphFailure { graph: GraphId(g), status }),
        0..4,
    );
    let kernel = (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(intersections, gallop_hits, simd_hits, bitmap_probes)| KernelStats {
            intersections,
            gallop_hits,
            simd_hits,
            bitmap_probes,
        },
    );
    let phases =
        (collection::vec(any::<u64>(), PHASE_COUNT), collection::vec(any::<u64>(), PHASE_COUNT))
            .prop_map(|(nanos, items)| {
                let mut p = PhaseStats::default();
                p.nanos.copy_from_slice(&nanos);
                p.items.copy_from_slice(&items);
                p
            });
    let numbers = (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>());
    (arb_status(), numbers, failures, kernel, phases)
        .prop_map(
            |(
                status,
                (candidates, filter_nanos, verify_nanos, aux_bytes, retries),
                failures,
                kernel,
                phases,
            )| {
                WireOutcome {
                    status,
                    candidates,
                    filter_nanos,
                    verify_nanos,
                    aux_bytes,
                    retries,
                    failures,
                    kernel,
                    phases,
                }
            },
        )
        .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    (0u8..9)
        .prop_flat_map(|kind| -> BoxedStrategy<Message> {
            match kind {
                0 => (any::<u32>(), any::<bool>(), any::<u64>(), any::<u32>(), any::<u32>())
                    .prop_map(|(version, client, db_fp, shards, shard_index)| Message::Hello {
                        version,
                        role: if client { PeerRole::Client } else { PeerRole::Coordinator },
                        db_fp,
                        shards,
                        shard_index,
                    })
                    .boxed(),
                1 => (any::<u32>(), any::<u64>(), any::<u32>())
                    .prop_map(|(version, db_fp, graphs)| Message::HelloAck {
                        version,
                        db_fp,
                        graphs,
                    })
                    .boxed(),
                2 => (any::<u64>(), any::<u64>(), arb_graph())
                    .prop_map(|(id, budget_ms, graph)| Message::Query { id, budget_ms, graph })
                    .boxed(),
                3 => (any::<u64>(), collection::vec(any::<u32>().prop_map(GraphId), 0..32))
                    .prop_map(|(id, graphs)| Message::Answers { id, graphs })
                    .boxed(),
                4 => (any::<u64>(), arb_outcome())
                    .prop_map(|(id, outcome)| Message::Outcome { id, outcome })
                    .boxed(),
                5 => arb_string(40).prop_map(|message| Message::Error { message }).boxed(),
                6 => Just(Message::MetricsRequest).boxed(),
                7 => arb_string(40).prop_map(|text| Message::MetricsText { text }).boxed(),
                _ => Just(Message::Bye).boxed(),
            }
        })
        .boxed()
}

/// A damaged frame must surface as a structured error: a framing/checksum
/// [`GraphError::Binary`], a clean [`WireError::Closed`], or a transport
/// error — never an `Ok` decode of garbage, and (enforced by the test
/// harness) never a panic.
fn assert_fails_closed(result: Result<Message, WireError>) -> Result<(), TestCaseError> {
    match result {
        Ok(m) => Err(TestCaseError::Fail(format!("damaged frame decoded as {m:?}"))),
        Err(WireError::Frame(GraphError::Binary { .. }) | WireError::Closed) => Ok(()),
        Err(WireError::Io(_)) => Ok(()),
        Err(other) => Err(TestCaseError::Fail(format!("unexpected error shape: {other}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every message round-trips bit-exactly through one frame.
    #[test]
    fn frame_round_trips(msg in arb_message()) {
        let frame = encode_frame(&msg);
        let back = decode_frame(&frame, &WireConfig::default());
        prop_assert!(back.is_ok(), "round trip failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), msg);
    }

    /// A concatenated stream of frames reads back in order, then reports a
    /// clean close — framing never loses sync between messages.
    #[test]
    fn stream_round_trips_in_order(msgs in collection::vec(arb_message(), 0..5)) {
        let config = WireConfig::default();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, m).unwrap();
        }
        let mut r = &stream[..];
        for m in &msgs {
            let got = read_frame(&mut r, &config);
            prop_assert!(got.is_ok(), "stream decode failed: {:?}", got.err());
            prop_assert_eq!(&got.unwrap(), m);
        }
        prop_assert!(matches!(read_frame(&mut r, &config), Err(WireError::Closed)));
    }

    /// Truncating a frame at *any* byte fails closed, both as a slice and
    /// as a torn stream.
    #[test]
    fn truncation_fails_closed(msg in arb_message(), cut in any::<usize>()) {
        let config = WireConfig::default();
        let frame = encode_frame(&msg);
        let len = cut % frame.len(); // strictly < frame.len()
        assert_fails_closed(decode_frame(&frame[..len], &config))?;
        let mut r = &frame[..len];
        assert_fails_closed(read_frame(&mut r, &config))?;
    }

    /// Flipping any single bit of a frame fails closed: the checksum (or,
    /// for header bits, the magic/length validation) catches it.
    #[test]
    fn single_bit_flip_fails_closed(msg in arb_message(), pick in any::<usize>()) {
        let config = WireConfig::default();
        let mut frame = encode_frame(&msg);
        let bit = pick % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        assert_fails_closed(decode_frame(&frame, &config))?;
        // The stream path may also report the flip as a length mismatch —
        // that shows up as Closed/Io/Frame, never a successful decode. A
        // flipped *length* field can make read_frame wait for bytes that
        // never come; the slice path above already proves the validation,
        // so only exercise the stream when the declared length still
        // matches the actual frame size.
        let declared = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]) as usize;
        if declared + 17 == frame.len() {
            let mut r = &frame[..];
            assert_fails_closed(read_frame(&mut r, &config))?;
        }
    }

    /// A declared payload length over the cap is rejected before any
    /// allocation, whatever the cap.
    #[test]
    fn over_cap_length_is_rejected(cap in 0u32..4096, excess in 1u32..1_000_000) {
        let config = WireConfig { max_frame_len: cap };
        let mut frame = Vec::new();
        frame.extend_from_slice(b"SQPW");
        frame.push(9); // Bye
        frame.extend_from_slice(&(cap.saturating_add(excess)).to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]);
        let mut r = &frame[..];
        match read_frame(&mut r, &config) {
            Err(WireError::Frame(GraphError::Binary { message, .. })) => {
                prop_assert!(message.contains("exceeds cap"), "{}", message);
            }
            other => {
                return Err(TestCaseError::Fail(format!("expected cap rejection, got {other:?}")));
            }
        }
    }

    /// Frames mangled by the chaos plan (truncate / corrupt at full rate)
    /// never decode successfully — the fault is always *detected*.
    #[test]
    fn chaos_mangled_frames_never_decode(msg in arb_message(), seed in any::<u64>(), truncate in any::<bool>()) {
        let config = WireChaosConfig {
            seed,
            truncate_per_mille: if truncate { 1000 } else { 0 },
            corrupt_per_mille: if truncate { 0 } else { 1000 },
            ..Default::default()
        };
        let chaos = WireChaos::new(config);
        let frame = encode_frame(&msg);
        let mangled = chaos.mangle(frame.clone()).expect("truncate/corrupt keep the frame");
        prop_assert_ne!(&mangled, &frame);
        assert_fails_closed(decode_frame(&mangled, &WireConfig::default()))?;
    }
}

/// The deterministic chaos plan is a pure function of (seed, index):
/// replaying the plan yields identical faults, and two *different* seeds
/// produce different plans (with overwhelming likelihood over 1000 frames).
#[test]
fn chaos_plan_replays_identically() {
    let config = WireChaosConfig {
        seed: 0xfeed,
        drop_per_mille: 80,
        truncate_per_mille: 80,
        corrupt_per_mille: 80,
        delay_per_mille: 0,
        delay_ms: 0,
    };
    let a = WireChaos::new(config);
    let b = WireChaos::new(config);
    let plan_a: Vec<_> = (0..1000).map(|i| a.planned_fault(i)).collect();
    let plan_b: Vec<_> = (0..1000).map(|i| b.planned_fault(i)).collect();
    assert_eq!(plan_a, plan_b);
    let other = WireChaos::new(WireChaosConfig { seed: 0xbeef, ..config });
    let plan_c: Vec<_> = (0..1000).map(|i| other.planned_fault(i)).collect();
    assert_ne!(plan_a, plan_c, "distinct seeds must shape distinct plans");
}

/// Hello/HelloAck round-trip at the protocol's own version constant — the
/// frames the handshake actually exchanges.
#[test]
fn handshake_frames_round_trip() {
    let config = WireConfig::default();
    for msg in [
        Message::Hello {
            version: WIRE_VERSION,
            role: PeerRole::Coordinator,
            db_fp: 0x1234_5678_9abc_def0,
            shards: 8,
            shard_index: 7,
        },
        Message::HelloAck { version: WIRE_VERSION, db_fp: 0x1234_5678_9abc_def0, graphs: 1000 },
    ] {
        let frame = encode_frame(&msg);
        assert_eq!(decode_frame(&frame, &config).unwrap(), msg);
    }
}
