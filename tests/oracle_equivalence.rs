//! Oracle-backed equivalence sweep (the observability PR's safety net): the
//! span instrumentation threaded through every matcher's hot path must not
//! change a single answer. Every matcher's embedding set and every engine's
//! answer set is compared against the brute-force oracle
//! (`sqp_matching::brute`) on random labeled graphs, and the parallel pool
//! is swept at 1, 2, 4 and 8 threads.
//!
//! Case count is environment-driven (`PROPTEST_CASES`, default 64; CI runs
//! 256) so local runs stay fast while CI gets the full sweep.

use std::sync::Arc;

use proptest::prelude::*;

use subgraph_query::core::adaptive::{AdaptiveEngine, CostModel, MatcherRouter};
use subgraph_query::core::engines::{all_engines, matcher_by_name};
use subgraph_query::core::parallel::QueryPool;
use subgraph_query::core::{QueryEngine, QueryStatus};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphBuilder, GraphDb, Label, VertexId};
use subgraph_query::matching::{brute, Deadline, FilterResult, Matcher};

/// Every matcher in the registry, by name.
const MATCHERS: [&str; 7] = ["CFQL", "CFL", "GraphQL", "Ullmann", "QuickSI", "TurboIso", "SPath"];

/// Strategy: a random labeled graph with up to `max_v` vertices and `max_e`
/// edge attempts (self-loops and duplicates dropped by the builder).
fn arb_graph(max_v: usize, max_e: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        let vertex_labels = proptest::collection::vec(0..labels, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_e);
        (vertex_labels, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

/// Strategy: a `(data graph, connected query carved from it)` pair, small
/// enough for the exponential oracle.
fn arb_pair() -> impl Strategy<Value = (Graph, Graph)> {
    (arb_graph(9, 18, 3), any::<u64>()).prop_map(|(g, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = brute::random_connected_query(&mut rng, &g, 4);
        (g, q)
    })
}

/// Strategy: a database of random graphs plus a query carved from one of
/// them (so at least one answer is likely).
fn arb_db_and_query() -> impl Strategy<Value = (Arc<GraphDb>, Graph)> {
    (proptest::collection::vec(arb_graph(8, 14, 3), 1..7), any::<u64>()).prop_map(
        |(graphs, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            let host = graphs[(seed % graphs.len() as u64) as usize].clone();
            let q = brute::random_connected_query(&mut rng, &host, 3);
            (Arc::new(GraphDb::from_graphs(graphs)), q)
        },
    )
}

/// The sorted embedding set `matcher` produces on `(q, g)`.
fn matcher_embeddings(matcher: &dyn Matcher, q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    match matcher.filter(q, g, Deadline::none()).unwrap() {
        FilterResult::Pruned => {}
        FilterResult::Space(space) => {
            matcher
                .enumerate(q, g, &space, u64::MAX, Deadline::none(), &mut |e| {
                    out.push(e.as_slice().to_vec());
                })
                .unwrap();
        }
    }
    out.sort();
    out
}

/// The oracle's sorted embedding set.
fn oracle_embeddings(q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let mut out: Vec<Vec<VertexId>> =
        brute::enumerate_all(q, g).iter().map(|e| e.as_slice().to_vec()).collect();
    out.sort();
    out
}

/// The oracle's sorted answer set over a database.
fn oracle_answers(db: &GraphDb, q: &Graph) -> Vec<GraphId> {
    (0..db.len() as u32).map(GraphId).filter(|&gid| brute::is_subgraph(q, db.graph(gid))).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Every matcher enumerates exactly the oracle's embedding set.
    #[test]
    fn matchers_enumerate_the_oracle_embedding_set((g, q) in arb_pair()) {
        let expected = oracle_embeddings(&q, &g);
        for name in MATCHERS {
            let matcher = matcher_by_name(name).unwrap();
            let got = matcher_embeddings(&*matcher, &q, &g);
            prop_assert_eq!(&got, &expected, "matcher {} diverged from the oracle", name);
        }
    }

    /// Every engine (IFV, vcFV and IvcFV alike) returns exactly the oracle's
    /// answer set.
    #[test]
    fn engines_answer_the_oracle_answer_set((db, q) in arb_db_and_query()) {
        let expected = oracle_answers(&db, &q);
        for mut engine in all_engines() {
            engine.build(&db).unwrap();
            let out = engine.query(&q);
            prop_assert_eq!(out.status, QueryStatus::Completed, "engine {} did not complete", engine.name());
            prop_assert_eq!(
                &out.answers, &expected,
                "engine {} diverged from the oracle", engine.name()
            );
        }
    }
}

proptest! {
    // The pool sweep runs 4 thread counts per case; a quarter of the budget
    // keeps total work in line with the other properties.
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64) / 4 + 1
    ))]

    /// The pooled matcher path returns the oracle answers at every thread
    /// count (worker partitioning must not change results).
    #[test]
    fn pool_answers_match_oracle_across_thread_counts((db, q) in arb_db_and_query()) {
        let expected = oracle_answers(&db, &q);
        for threads in [1usize, 2, 4, 8] {
            let pool = QueryPool::new(threads);
            let matcher = matcher_by_name("CFQL").unwrap();
            let out = pool.query(matcher, &db, &q, Deadline::none()).outcome;
            prop_assert_eq!(out.status, QueryStatus::Completed);
            prop_assert_eq!(
                &out.answers, &expected,
                "pool at {} threads diverged from the oracle", threads
            );
        }
    }

    /// Adaptive routing never changes answers: whatever engine the router
    /// picks (learning mode, warmup included), every query still returns
    /// exactly the oracle's answer set.
    #[test]
    fn adaptive_engine_answers_the_oracle((db, q) in arb_db_and_query()) {
        let expected = oracle_answers(&db, &q);
        let mut engine = AdaptiveEngine::new();
        engine.build(&db).unwrap();
        // Several passes so routing moves past warmup into argmin routing.
        for _ in 0..5 {
            let out = engine.query(&q);
            prop_assert_eq!(out.status, QueryStatus::Completed);
            prop_assert_eq!(&out.answers, &expected, "adaptive diverged from the oracle");
            prop_assert!(!out.engine.is_empty(), "outcome must name the routed engine");
        }
    }

    /// A frozen model routes as a pure function of (model, query): the
    /// decision is stable, and the routed matcher's pooled answers are
    /// byte-identical to the adaptive engine's at 1, 2, 4 and 8 threads.
    #[test]
    fn adaptive_routing_is_deterministic_across_thread_counts(
        (db, q) in arb_db_and_query(), seed in any::<u64>()
    ) {
        let model = CostModel::cold_start(&["CFQL", "GraphQL", "QuickSI", "Ullmann"], seed);
        let router = MatcherRouter::new(model.clone(), &db, Default::default()).unwrap();
        let (idx, _) = router.route(&q);
        let mut frozen = AdaptiveEngine::new();
        frozen.set_model(model).unwrap();
        frozen.build(&db).unwrap();
        prop_assert_eq!(frozen.route_index(&q), idx, "engine and router must agree");
        let direct = frozen.query(&q);
        prop_assert_eq!(direct.engine.as_str(), router.name(idx));
        for threads in [1usize, 2, 4, 8] {
            let (ridx, _) = router.route(&q);
            prop_assert_eq!(ridx, idx, "routing varied between calls");
            let pool = QueryPool::new(threads);
            let out = pool.query(router.matcher(ridx), &db, &q, Deadline::none()).outcome;
            prop_assert_eq!(out.status, QueryStatus::Completed);
            prop_assert_eq!(
                &out.answers, &direct.answers,
                "routed pool at {} threads diverged from the adaptive engine", threads
            );
        }
    }

    /// Model persistence round-trips: a model shaped by arbitrary online
    /// updates, written with `to_json` and re-read with `from_json`, holds
    /// the exact weights and reproduces identical routing decisions.
    #[test]
    fn model_persistence_reproduces_routing_decisions(
        seed in any::<u64>(),
        updates in proptest::collection::vec(
            (0usize..4, -400i32..400, 0i32..3000, any::<bool>()), 0..32),
        probes in proptest::collection::vec(-100i32..100, 1..16),
    ) {
        use subgraph_query::matching::FEATURE_DIM;
        let mut model = CostModel::cold_start(&["CFQL", "GraphQL", "QuickSI", "Ullmann"], seed);
        for (idx, v, y, censored) in updates {
            let mut x = [0.0; FEATURE_DIM];
            x[0] = 1.0;
            x[1] = f64::from(v) / 10.0;
            model.update(idx, &x, f64::from(y) / 100.0, censored);
        }
        let back = CostModel::from_json(&model.to_json()).unwrap();
        prop_assert_eq!(&back, &model, "weights must survive the round trip bit-exactly");
        for v in probes {
            let v = f64::from(v) / 10.0;
            let mut x = [0.0; FEATURE_DIM];
            x[0] = 1.0;
            x[1] = v;
            x[2] = v * 0.5;
            prop_assert_eq!(back.route(&x), model.route(&x));
        }
    }
}
