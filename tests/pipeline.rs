//! End-to-end pipeline tests: generators → engines → metrics.
//!
//! Exercises the same path the `repro` harness takes, at test size, and
//! checks the metric invariants (I7) along the way.

use std::sync::Arc;
use std::time::Duration;

use subgraph_query::core::engines::paper_engines;
use subgraph_query::core::prelude::*;
use subgraph_query::datagen::graphgen;
use subgraph_query::datagen::profiles::aids_like;
use subgraph_query::datagen::query::{generate_query_set, QueryGenMethod, QuerySetSpec};

#[test]
fn synthetic_pipeline_end_to_end() {
    let db = Arc::new(graphgen::generate(40, 30, 8, 4.0, 3));
    let spec = QuerySetSpec { edges: 6, method: QueryGenMethod::RandomWalk, count: 8 };
    let queries = generate_query_set(&db, spec, 11);

    let mut engines = paper_engines();
    let mut reference: Option<Vec<f64>> = None;
    for engine in engines.iter_mut() {
        engine.build(&db).expect("test-sized build");
        let report = run_query_set(
            engine.as_mut(),
            &spec.name(),
            &queries,
            RunnerConfig::with_budget(Duration::from_secs(10)),
        );
        assert_eq!(report.records.len(), queries.len());
        // Metric invariants.
        let precision = report.filtering_precision();
        assert!((0.0..=1.0).contains(&precision), "{}: precision {precision}", engine.name());
        assert!(report.avg_candidates() >= report.avg_answers(), "{}", engine.name());
        assert!(report.per_si_test_ms() >= 0.0);
        assert_eq!(report.timeout_count(), 0, "{} timed out", engine.name());
        // Answers are engine-independent.
        let answers: Vec<f64> = report.records.iter().map(|r| r.answers as f64).collect();
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{} answer mismatch", engine.name()),
        }
    }
}

#[test]
fn profile_pipeline_with_dense_queries() {
    let mut profile = aids_like();
    profile.graphs = 120;
    let db = Arc::new(profile.generate(21));
    let spec = QuerySetSpec { edges: 8, method: QueryGenMethod::Bfs, count: 6 };
    let queries = generate_query_set(&db, spec, 31);

    let mut cfql = CfqlEngine::new();
    let mut grapes = GrapesEngine::new();
    cfql.build(&db).unwrap();
    grapes.build(&db).unwrap();
    let config = RunnerConfig::with_budget(Duration::from_secs(10));
    let a = run_query_set(&mut cfql, &spec.name(), &queries, config);
    let b = run_query_set(&mut grapes, &spec.name(), &queries, config);
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.answers, y.answers);
    }
}

#[test]
fn io_round_trip_preserves_query_answers() {
    use subgraph_query::graph::io;
    let db = graphgen::generate(10, 15, 4, 3.0, 9);
    let spec = QuerySetSpec { edges: 4, method: QueryGenMethod::RandomWalk, count: 3 };
    let queries = generate_query_set(&db, spec, 41);

    // Serialize + reload the database; answers must be unchanged.
    let mut buf = Vec::new();
    io::write_database(&mut buf, &db).unwrap();
    let db2 = io::read_database(buf.as_slice()).unwrap();
    assert_eq!(db.len(), db2.len());

    let (db, db2) = (Arc::new(db), Arc::new(db2));
    let mut e1 = CfqlEngine::new();
    let mut e2 = CfqlEngine::new();
    e1.build(&db).unwrap();
    e2.build(&db2).unwrap();
    for q in &queries {
        assert_eq!(e1.query(q).answers, e2.query(q).answers);
    }
}

#[test]
fn query_set_statistics_are_plausible() {
    use subgraph_query::graph::stats::QuerySetStats;
    let db = graphgen::generate(20, 40, 6, 5.0, 17);
    for (edges, method) in [(8, QueryGenMethod::RandomWalk), (8, QueryGenMethod::Bfs)] {
        let spec = QuerySetSpec { edges, method, count: 20 };
        let qs = generate_query_set(&db, spec, 5);
        let stats = QuerySetStats::compute(qs.iter());
        // Sparse (random-walk) queries have more vertices per edge than
        // dense (BFS) queries — the Table V shape.
        if method == QueryGenMethod::Bfs {
            assert!(stats.avg_degree >= 2.0, "dense degree {}", stats.avg_degree);
        } else {
            assert!(stats.avg_vertices >= edges as f64 * 0.8);
        }
    }
}
