//! Loopback chaos suite for the sharded scatter–gather service
//! (DESIGN.md "Distributed serving", invariant I8 extended to shard
//! failure):
//!
//! * a healthy N-shard cluster returns answers **byte-identical** to a
//!   single-process [`QueryService`] run, at 1/2/4/8 scatter threads;
//! * killing one of three shards degrades every query to a *partial*
//!   result: healthy graphs stay byte-identical to the local run, every
//!   graph placed on the dead shard is attributed
//!   [`QueryStatus::Unavailable`] (never silently dropped), the dead
//!   peer's circuit breaker opens while the healthy peers' stay closed,
//!   and the whole report is identical at any scatter width;
//! * a shard whose outbound frames are bit-flipped ([`WireChaos`]) or
//!   silently dropped is detected (checksum / read deadline) and degraded
//!   exactly like a dead shard — the coordinator never hangs or panics;
//! * deadline propagation: a shard slowed far past the query budget
//!   replies `TimedOut` within the budget (plus slack) instead of stalling
//!   the query — and an answering-but-slow peer does **not** charge its
//!   breaker;
//! * drain terminates and every pool/executor thread of the cluster is
//!   reclaimed (checked via `/proc/self/task` thread names).

use std::sync::Arc;
use std::time::{Duration, Instant};

use subgraph_query::core::chaos::graph_fingerprint;
use subgraph_query::core::prelude::*;
use subgraph_query::datagen::graphgen;
use subgraph_query::datagen::query::{generate_query_set, QueryGenMethod, QuerySetSpec};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphDb};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::Matcher;

/// Fixture: 30 data graphs x 8 queries, collision-free fingerprints, and a
/// placement over 3 shards in which every shard holds at least one graph.
fn fixture() -> (Arc<GraphDb>, Vec<Graph>) {
    let db = Arc::new(graphgen::generate(30, 14, 4, 3.0, 19));
    let spec = QuerySetSpec { edges: 4, method: QueryGenMethod::RandomWalk, count: 8 };
    let queries = generate_query_set(&db, spec, 23);
    assert_eq!(queries.len(), 8);
    let mut fps: Vec<u64> =
        db.graphs().iter().chain(queries.iter()).map(graph_fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), db.len() + queries.len(), "fingerprint collision in fixture");
    let placement = ShardPlacement::new(&db, 3);
    for s in 0..3 {
        assert!(!placement.globals(s).is_empty(), "empty shard {s} in fixture");
    }
    (db, queries)
}

fn start_shard(
    db: &GraphDb,
    index: usize,
    shards: usize,
    prefix: &str,
    chaos: Option<WireChaos>,
    matcher: Arc<dyn Matcher>,
) -> ShardServer {
    let config = ShardServerConfig {
        shard_index: index,
        shards,
        service: ServiceConfig {
            threads: 1,
            thread_prefix: format!("{prefix}{index}"),
            ..Default::default()
        },
        chaos,
        ..Default::default()
    };
    ShardServer::start(matcher, db, config).expect("shard server must start")
}

fn start_cluster(db: &GraphDb, shards: usize, prefix: &str) -> Vec<ShardServer> {
    (0..shards).map(|i| start_shard(db, i, shards, prefix, None, Arc::new(Cfql::new()))).collect()
}

/// A coordinator over `servers` with test-friendly timeouts: `idle` is the
/// read deadline that turns a silent shard into `Unavailable`.
fn coordinator_over(
    db: &GraphDb,
    servers: &[ShardServer],
    scatter_threads: usize,
    runner: RunnerConfig,
    breaker: BreakerConfig,
    idle: Duration,
) -> Coordinator {
    Coordinator::new(
        db,
        CoordinatorConfig {
            shard_addrs: servers.iter().map(|s| s.local_addr().to_string()).collect(),
            runner,
            breaker,
            scatter_threads,
            connect_timeout: Duration::from_millis(500),
            idle_read_timeout: idle,
            ..Default::default()
        },
    )
}

/// The per-query view the assertions compare: everything that must be
/// deterministic across scatter widths.
#[derive(Clone, Debug, PartialEq)]
struct QueryView {
    answers: Vec<GraphId>,
    failures: Vec<GraphFailure>,
    status: QueryStatus,
    retries: u32,
}

fn run_all(c: &Coordinator, queries: &[Graph]) -> Vec<QueryView> {
    queries
        .iter()
        .map(|q| {
            let (ticket, admission) = c.submit(q);
            assert!(matches!(admission, Admission::Admitted), "lockstep submit must admit");
            let (o, retries) = ticket.wait();
            QueryView { answers: o.answers, failures: o.failures, status: o.status, retries }
        })
        .collect()
}

/// Single-process ground truth: the answers of each query on the full db.
fn local_answers(db: &Arc<GraphDb>, queries: &[Graph]) -> Vec<Vec<GraphId>> {
    let service = QueryService::new(
        Arc::new(Cfql::new()),
        Arc::clone(db),
        ServiceConfig { threads: 1, thread_prefix: "dloc".into(), ..Default::default() },
    );
    let out = queries
        .iter()
        .map(|q| {
            let (ticket, _) = service.submit(q);
            ticket.wait().0.answers
        })
        .collect();
    service.shutdown();
    out
}

/// Number of live threads whose name starts with `prefix` (Linux).
fn named_threads(prefix: &str) -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
    tasks
        .flatten()
        .filter(|t| {
            std::fs::read_to_string(t.path().join("comm"))
                .is_ok_and(|comm| comm.trim_end().starts_with(prefix))
        })
        .count()
}

/// What a degraded run must look like when exactly `dead` (a peer index)
/// is unavailable: healthy answers byte-identical to the local run, every
/// graph of the dead shard attributed `Unavailable`, overall status
/// `Unavailable`.
fn assert_degraded(
    views: &[QueryView],
    local: &[Vec<GraphId>],
    placement: &ShardPlacement,
    dead: usize,
) {
    let dead_set = placement.globals(dead);
    let expected_failures: Vec<GraphFailure> = dead_set
        .iter()
        .map(|&g| GraphFailure { graph: g, status: QueryStatus::Unavailable })
        .collect();
    for (i, view) in views.iter().enumerate() {
        let healthy: Vec<GraphId> =
            local[i].iter().copied().filter(|g| dead_set.binary_search(g).is_err()).collect();
        assert_eq!(
            view.answers, healthy,
            "query {i}: healthy answers must be byte-identical to the local run"
        );
        assert_eq!(
            view.failures, expected_failures,
            "query {i}: every graph of dead shard {dead} must be attributed Unavailable"
        );
        assert_eq!(view.status, QueryStatus::Unavailable, "query {i}");
    }
}

/// A healthy cluster is indistinguishable from the single-process service,
/// for 1 and 3 shards, at every scatter width.
#[test]
fn healthy_cluster_matches_local_run() {
    let (db, queries) = fixture();
    let local = local_answers(&db, &queries);
    for shards in [1usize, 3] {
        let servers = start_cluster(&db, shards, "dhl");
        for scatter in [1usize, 2, 4, 8] {
            let c = coordinator_over(
                &db,
                &servers,
                scatter,
                RunnerConfig::with_budget(Duration::from_secs(60)),
                BreakerConfig::default(),
                Duration::from_secs(10),
            );
            let views = run_all(&c, &queries);
            for (i, view) in views.iter().enumerate() {
                assert_eq!(view.status, QueryStatus::Completed, "query {i} at {shards} shards");
                assert!(view.failures.is_empty(), "query {i} at {shards} shards");
                assert_eq!(
                    view.answers, local[i],
                    "query {i} at {shards} shards / {scatter} scatter threads"
                );
            }
            let d = c.shutdown();
            assert!(d.drained_within_deadline);
        }
        for s in servers {
            let d = s.shutdown();
            assert!(d.drained_within_deadline, "shard drain must finish");
        }
    }
}

/// Kill one of three shards: every query degrades to a partial result with
/// the dead shard's graphs attributed Unavailable, the dead peer's breaker
/// opens (healthy peers stay closed), and the whole report is identical at
/// 1/2/4/8 scatter threads.
#[test]
fn killed_shard_degrades_to_partial_results() {
    let (db, queries) = fixture();
    let local = local_answers(&db, &queries);
    let servers = start_cluster(&db, 3, "dkl");
    // SIGKILL stand-in: sever everything shard 1 has, stop serving.
    servers[1].kill_connections();

    let mut runner = RunnerConfig::with_budget(Duration::from_secs(5));
    runner.max_retries = 1;
    runner.retry_backoff = Duration::from_millis(5);
    let breaker = BreakerConfig { fault_threshold: 2, cooldown: 100 };

    let mut baseline: Option<Vec<QueryView>> = None;
    for scatter in [1usize, 2, 4, 8] {
        let c =
            coordinator_over(&db, &servers, scatter, runner, breaker, Duration::from_millis(150));
        let views = run_all(&c, &queries);
        assert_degraded(&views, &local, c.placement(), 1);

        // Breakers: the dead peer trips after `fault_threshold` queries and
        // stays quarantined; the healthy peers never charge.
        assert_eq!(c.breaker_state(1), BreakerState::Open, "dead peer must be quarantined");
        assert_eq!(c.breaker_state(0), BreakerState::Closed);
        assert_eq!(c.breaker_state(2), BreakerState::Closed);
        let stats = c.peer_stats();
        assert_eq!(stats[1].unavailable, 2, "only pre-trip queries probe the dead peer");
        assert_eq!(stats[1].retries, 2, "one transport retry per probed query");
        assert_eq!(stats[0].unavailable, 0);
        assert_eq!(stats[2].unavailable, 0);
        assert_eq!(stats[0].queries, queries.len() as u64);

        match &baseline {
            None => baseline = Some(views),
            Some(first) => assert_eq!(
                &views, first,
                "degraded report must be identical at {scatter} scatter threads"
            ),
        }
        let d = c.shutdown();
        assert!(d.drained_within_deadline);
    }
    for s in servers {
        s.shutdown(); // the killed shard must still reclaim its threads
    }
}

/// A shard whose outbound frames are all bit-flipped is detected by the
/// checksum and degraded exactly like a dead shard — for that peer only.
#[test]
fn corrupting_shard_degrades_to_partial_results() {
    let (db, queries) = fixture();
    let local = local_answers(&db, &queries);
    let corrupt =
        WireChaos::new(WireChaosConfig { seed: 7, corrupt_per_mille: 1000, ..Default::default() });
    let servers = vec![
        start_shard(&db, 0, 3, "dco", None, Arc::new(Cfql::new())),
        start_shard(&db, 1, 3, "dco", Some(corrupt), Arc::new(Cfql::new())),
        start_shard(&db, 2, 3, "dco", None, Arc::new(Cfql::new())),
    ];
    let mut runner = RunnerConfig::with_budget(Duration::from_secs(5));
    runner.max_retries = 1;
    runner.retry_backoff = Duration::from_millis(5);
    let c = coordinator_over(
        &db,
        &servers,
        4,
        runner,
        BreakerConfig { fault_threshold: 2, cooldown: 100 },
        Duration::from_millis(300),
    );
    let views = run_all(&c, &queries);
    assert_degraded(&views, &local, c.placement(), 1);
    assert_eq!(c.breaker_state(1), BreakerState::Open);
    assert_eq!(c.breaker_state(0), BreakerState::Closed);
    assert_eq!(c.breaker_state(2), BreakerState::Closed);
    let d = c.shutdown();
    assert!(d.drained_within_deadline);
    for s in servers {
        s.shutdown();
    }
}

/// A shard that silently swallows every reply (drop chaos) hits the read
/// deadline instead of hanging the coordinator, and degrades the same way.
#[test]
fn silent_shard_hits_the_read_deadline() {
    let (db, queries) = fixture();
    let local = local_answers(&db, &queries);
    let drop_all =
        WireChaos::new(WireChaosConfig { seed: 11, drop_per_mille: 1000, ..Default::default() });
    let servers = vec![
        start_shard(&db, 0, 3, "dsi", None, Arc::new(Cfql::new())),
        start_shard(&db, 1, 3, "dsi", Some(drop_all), Arc::new(Cfql::new())),
        start_shard(&db, 2, 3, "dsi", None, Arc::new(Cfql::new())),
    ];
    let mut runner = RunnerConfig::with_budget(Duration::from_secs(5));
    runner.max_retries = 1;
    runner.retry_backoff = Duration::from_millis(5);
    let c = coordinator_over(
        &db,
        &servers,
        4,
        runner,
        BreakerConfig { fault_threshold: 2, cooldown: 100 },
        Duration::from_millis(150),
    );
    let start = Instant::now();
    let views = run_all(&c, &queries);
    assert_degraded(&views, &local, c.placement(), 1);
    assert_eq!(c.breaker_state(1), BreakerState::Open);
    // 2 probed queries x 2 attempts x 150ms deadline, plus healthy work:
    // the silent shard must cost bounded time, not a hang.
    assert!(start.elapsed() < Duration::from_secs(10), "coordinator must not hang");
    let d = c.shutdown();
    assert!(d.drained_within_deadline);
    for s in servers {
        s.shutdown();
    }
}

/// Deadline propagation: a shard slowed far past the query budget replies
/// `TimedOut` within the budget (plus transport slack) — the query is
/// degraded, not stalled, and an *answering* slow peer does not charge its
/// breaker.
#[test]
fn slow_shard_times_out_within_budget() {
    let (db, queries) = fixture();
    let local = local_answers(&db, &queries);
    let slow: Arc<dyn Matcher> =
        Arc::new(SlowMatcher::new(Arc::new(Cfql::new()), Duration::from_secs(2)));
    let servers = vec![
        start_shard(&db, 0, 3, "dsl", None, Arc::new(Cfql::new())),
        start_shard(&db, 1, 3, "dsl", None, slow),
        start_shard(&db, 2, 3, "dsl", None, Arc::new(Cfql::new())),
    ];
    let mut runner = RunnerConfig::with_budget(Duration::from_millis(300));
    runner.max_retries = 0;
    let c = coordinator_over(
        &db,
        &servers,
        4,
        runner,
        BreakerConfig::default(),
        Duration::from_secs(10),
    );
    let placement = c.placement().clone();
    let slow_set = placement.globals(1).to_vec();
    for (i, q) in queries.iter().enumerate().take(3) {
        let start = Instant::now();
        let (ticket, _) = c.submit(q);
        let (o, _) = ticket.wait();
        assert!(
            start.elapsed() < Duration::from_millis(1500),
            "query {i}: the 2s-slow shard must not stall past the 300ms budget"
        );
        assert_eq!(o.status, QueryStatus::TimedOut, "query {i}");
        let healthy: Vec<GraphId> =
            local[i].iter().copied().filter(|g| slow_set.binary_search(g).is_err()).collect();
        assert_eq!(o.answers, healthy, "query {i}: healthy shards still answer in full");
    }
    // The slow peer *answered* (TimedOut is a shard-internal outcome, not a
    // transport fault): its breaker must stay closed.
    assert_eq!(c.breaker_state(1), BreakerState::Closed);
    let d = c.shutdown();
    assert!(d.drained_within_deadline);
    for s in servers {
        let d = s.shutdown();
        assert!(d.drained_within_deadline);
    }
}

/// Drain terminates and reclaims every pool/executor thread the cluster
/// started (distinctive prefix, counted via /proc/self/task).
#[test]
fn drain_reclaims_every_cluster_thread() {
    let (db, queries) = fixture();
    let prefix = "dlk";
    let can_count = std::path::Path::new("/proc/self/task").exists();
    assert_eq!(named_threads(prefix), 0);
    let servers = start_cluster(&db, 3, prefix);
    let c = coordinator_over(
        &db,
        &servers,
        4,
        RunnerConfig::with_budget(Duration::from_secs(60)),
        BreakerConfig::default(),
        Duration::from_secs(10),
    );
    let views = run_all(&c, &queries[..2]);
    assert!(views.iter().all(|v| v.status == QueryStatus::Completed));
    if can_count {
        assert!(named_threads(prefix) > 0, "cluster threads must be visible while serving");
    }
    let start = Instant::now();
    let d = c.shutdown();
    assert!(d.drained_within_deadline, "coordinator drain must finish");
    for s in servers {
        let d = s.shutdown();
        assert!(d.drained_within_deadline, "shard drain must finish");
    }
    assert!(start.elapsed() < Duration::from_secs(10), "drain must terminate promptly");
    if can_count {
        let settle = Instant::now();
        while named_threads(prefix) > 0 {
            assert!(
                settle.elapsed() < Duration::from_secs(5),
                "leaked {} threads with prefix {prefix}",
                named_threads(prefix)
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
