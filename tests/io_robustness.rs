//! Robustness corpus for the `t/v/e` text reader (`sqp_graph::io`).
//!
//! Every malformed input here must come back as a structured
//! [`GraphError`] carrying the offending line — never a panic, never a
//! silently wrong database. The corpus covers the failure classes named in
//! the serving-layer issue: truncated headers, negative and overflowing
//! counts, out-of-range vertex ids, and byte-level garbage.

use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{io, GraphError, LabelInterner, VertexId};

/// Asserts that `text` is rejected with a parse error on `line`.
fn rejected_at(text: &str, line: usize) {
    match io::read_database(text.as_bytes()) {
        Err(GraphError::Parse { line: l, message }) => {
            assert_eq!(l, line, "wrong line for {text:?} (message: {message})");
        }
        Err(other) => panic!("expected Parse error for {text:?}, got {other:?}"),
        Ok(db) => panic!("expected rejection for {text:?}, parsed {} graphs", db.len()),
    }
}

#[test]
fn truncated_header_at_eof_is_rejected() {
    // A 't' line with nothing after it would otherwise build a 0-vertex
    // graph, which downstream matchers cannot handle.
    rejected_at("t # 0\n", 1);
    rejected_at("t # 0\nv 0 A\nt # 1\n", 3);
}

#[test]
fn header_followed_only_by_comments_is_rejected() {
    rejected_at("t # 0\n# nothing here\n\n", 1);
}

#[test]
fn eof_marker_is_not_a_truncated_header() {
    // `t # -1` is the literature's end-of-file marker.
    let db = io::read_database("t # 0\nv 0 A\nt # -1\n".as_bytes()).unwrap();
    assert_eq!(db.len(), 1);
    assert_eq!(db.graph(GraphId(0)).vertex_count(), 1);
}

#[test]
fn negative_counts_are_rejected_not_wrapped() {
    // A negative vertex id must not wrap into a huge unsigned value.
    rejected_at("t # 0\nv -1 A\n", 2);
    rejected_at("t # 0\nv 0 A\nv 1 B\ne -1 1\n", 4);
    rejected_at("t # 0\nv 0 A\nv 1 B\ne 0 -2\n", 4);
}

#[test]
fn overflowing_counts_are_rejected() {
    // Larger than u32/usize: the parse itself must fail cleanly.
    rejected_at("t # 0\nv 99999999999999999999999999 A\n", 2);
    rejected_at("t # 0\nv 0 A\nv 1 B\ne 0 99999999999999999999999999\n", 4);
}

#[test]
fn out_of_range_edge_endpoints_are_rejected_with_line() {
    rejected_at("t # 0\nv 0 A\nv 1 B\ne 0 7\n", 4);
    rejected_at("t # 0\nv 0 A\ne 3 0\n", 3);
}

#[test]
fn missing_fields_are_rejected() {
    rejected_at("t # 0\nv\n", 2); // no id, no label
    rejected_at("t # 0\nv 0\n", 2); // id but no label
    rejected_at("t # 0\nv 0 A\nv 1 B\ne\n", 4); // no endpoints
    rejected_at("t # 0\nv 0 A\nv 1 B\ne 0\n", 4); // one endpoint
}

#[test]
fn records_before_any_header_are_rejected() {
    rejected_at("v 0 A\n", 1);
    rejected_at("e 0 1\n", 1);
}

#[test]
fn non_dense_or_reordered_vertex_ids_are_rejected() {
    rejected_at("t # 0\nv 1 A\n", 2);
    rejected_at("t # 0\nv 0 A\nv 0 B\n", 3);
    rejected_at("t # 0\nv 0 A\nv 2 B\n", 3);
}

#[test]
fn self_loops_are_rejected() {
    rejected_at("t # 0\nv 0 A\ne 0 0\n", 3);
}

#[test]
fn unknown_record_types_are_rejected() {
    rejected_at("q 1 2 3\n", 1);
    rejected_at("t # 0\nv 0 A\nx y z\n", 3);
}

#[test]
fn non_utf8_bytes_surface_as_io_errors() {
    let bytes: &[u8] = b"t # 0\nv 0 \xff\xfe\n";
    match io::read_database(bytes) {
        Err(GraphError::Io(_)) | Err(GraphError::Parse { .. }) => {}
        Err(other) => panic!("unexpected error kind: {other:?}"),
        Ok(_) => panic!("non-UTF8 input must not parse"),
    }
}

#[test]
fn valid_input_still_parses_after_hardening() {
    let text = "# comment\n\nt # 0\nv 0 C\nv 1 N\ne 0 1\nt # 1\nv 0 O\n";
    let db = io::read_database(text.as_bytes()).unwrap();
    assert_eq!(db.len(), 2);
    let g = db.graph(GraphId(0));
    assert_eq!(g.vertex_count(), 2);
    assert_eq!(g.edge_count(), 1);
    assert_eq!(g.neighbors(VertexId(0)), &[VertexId(1)]);
}

#[test]
fn whole_corpus_never_panics() {
    // Sweep a grid of byte-level mutations of a valid file through the
    // reader; any outcome is fine as long as it is Ok or Err, not a panic.
    let base = b"t # 0\nv 0 C\nv 1 N\ne 0 1\nt # 1\nv 0 O\n";
    let mut corpus: Vec<Vec<u8>> = Vec::new();
    for cut in 0..base.len() {
        corpus.push(base[..cut].to_vec()); // truncations
    }
    for i in 0..base.len() {
        for b in [0u8, b'-', b'9', 0xff] {
            let mut m = base.to_vec();
            m[i] = b; // point mutations
            corpus.push(m);
        }
    }
    let mut interner = LabelInterner::new();
    for input in &corpus {
        let _ = io::read_graphs(input.as_slice(), &mut interner);
    }
}

// ---------------------------------------------------------------------------
// Atomic binary writes (`sqp_graph::binio::write_file`)
// ---------------------------------------------------------------------------

mod atomic_writes {
    use subgraph_query::graph::{binio, GraphBuilder, GraphDb, Label, VertexId};

    fn sample_db(tag: u32) -> GraphDb {
        let mut b = GraphBuilder::new();
        b.add_vertex(Label(tag));
        b.add_vertex(Label(tag + 1));
        b.add_edge(VertexId(0), VertexId(1)).unwrap();
        GraphDb::from_graphs(vec![b.build()])
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sqp-binio-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn write_file_round_trips() {
        let path = tmp("roundtrip");
        let db = sample_db(0);
        binio::write_file(&db, &path).unwrap();
        let back = binio::read_file(&path).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(binio::to_bytes(&back), binio::to_bytes(&db));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_file_replaces_existing_content_atomically() {
        let path = tmp("replace");
        binio::write_file(&sample_db(0), &path).unwrap();
        binio::write_file(&sample_db(7), &path).unwrap();
        let back = binio::read_file(&path).unwrap();
        assert_eq!(
            back.graph(subgraph_query::graph::database::GraphId(0)).label(VertexId(0)),
            Label(7)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_file_leaves_no_temp_files_behind() {
        let path = tmp("clean");
        binio::write_file(&sample_db(0), &path).unwrap();
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(&name) && n != &name)
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_write_preserves_the_old_file() {
        // Writing to a path whose parent is a *file* must fail cleanly...
        let blocker = tmp("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let inside = blocker.join("db.bin");
        assert!(binio::write_file(&sample_db(0), &inside).is_err());
        // ...and a target that already exists survives a later failure
        // untouched because the temp file takes the damage.
        std::fs::remove_file(&blocker).ok();
    }
}
