//! Kernel-equivalence properties (DESIGN.md "Enumeration kernels"):
//!
//! * every intersection kernel (baseline pivot scan, merge, gallop, the
//!   SIMD block kernel, and the adaptive `auto`) produces the identical
//!   sorted embedding set and the identical answer set / `QueryStatus` at
//!   1, 2, 4 and 8 threads — including on all-hub graphs where `auto`
//!   routes every intersection through the compressed bitmap containers;
//! * the adaptive kernel actually takes the hub-bitmap and galloping paths
//!   on the workloads built to trigger them (the counters prove it);
//! * the candidate-membership bitmaps are charged to the auxiliary-memory
//!   budget — a budget between the sets-only footprint and the full
//!   `heap_size()` trips `ResourceExhausted { kind: Memory }`.

use std::sync::Arc;

use proptest::prelude::*;

use subgraph_query::core::engines::GraphQlEngine;
use subgraph_query::core::parallel::QueryPool;
use subgraph_query::core::{QueryEngine, QueryStatus};
use subgraph_query::graph::{Graph, GraphBuilder, GraphDb, HeapSize, Label, VertexId};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::graphql::GraphQl;
use subgraph_query::matching::{
    brute, Deadline, FilterResult, KernelConfig, Matcher, MatcherConfig, ResourceGuard,
    ResourceKind, ResourceLimits,
};

/// Strategy: a random labeled graph with `n` vertices and up to `m` edges.
fn arb_graph(max_v: usize, max_e: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_v).prop_flat_map(move |n| {
        let vertex_labels = proptest::collection::vec(0..labels, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..=max_e);
        (vertex_labels, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

/// Strategy: a `(data graph, connected query carved from it)` pair.
fn arb_pair() -> impl Strategy<Value = (Graph, Graph)> {
    (arb_graph(10, 20, 3), any::<u64>()).prop_map(|(g, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let q = brute::random_connected_query(&mut rng, &g, 4);
        (g, q)
    })
}

/// Strategy: a database of random graphs plus a query carved from one.
fn arb_db_and_query() -> impl Strategy<Value = (Arc<GraphDb>, Graph)> {
    (proptest::collection::vec(arb_graph(8, 14, 3), 1..8), any::<u64>()).prop_map(
        |(graphs, seed)| {
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(seed);
            let host = graphs[(seed % graphs.len() as u64) as usize].clone();
            let q = brute::random_connected_query(&mut rng, &host, 3);
            (Arc::new(GraphDb::from_graphs(graphs)), q)
        },
    )
}

/// The sorted embedding set a GraphQL matcher configured with `kernel`
/// produces on `(q, g)`.
fn embeddings_with(kernel: KernelConfig, q: &Graph, g: &Graph) -> Vec<Vec<VertexId>> {
    let m = GraphQl::new().with_matcher_config(MatcherConfig::with_kernel(kernel));
    let mut out = Vec::new();
    match m.filter(q, g, Deadline::none()).unwrap() {
        FilterResult::Pruned => {}
        FilterResult::Space(space) => {
            m.enumerate(q, g, &space, u64::MAX, Deadline::none(), &mut |e| {
                out.push(e.as_slice().to_vec());
            })
            .unwrap();
        }
    }
    out.sort();
    out
}

/// A hub-heavy single-graph database: one high-degree center over several
/// label classes, so enumeration crosses the hub-bitmap degree threshold
/// and produces highly skewed candidate-list sizes (the galloping regime).
fn hub_db() -> (Arc<GraphDb>, Graph) {
    let mut b = GraphBuilder::new();
    b.add_vertex(Label(0)); // hub
    for v in 1..=160u32 {
        b.add_vertex(Label(1 + v % 2));
        let _ = b.add_edge(VertexId(0), VertexId(v));
    }
    // A sparse ring among the spokes so queries need real intersections.
    for v in 1..=160u32 {
        let w = if v == 160 { 1 } else { v + 1 };
        let _ = b.add_edge(VertexId(v), VertexId(w));
    }
    let g = b.build();

    let mut qb = GraphBuilder::new();
    qb.add_vertex(Label(0));
    qb.add_vertex(Label(1));
    qb.add_vertex(Label(2));
    let _ = qb.add_edge(VertexId(0), VertexId(1));
    let _ = qb.add_edge(VertexId(0), VertexId(2));
    let _ = qb.add_edge(VertexId(1), VertexId(2));
    (Arc::new(GraphDb::from_graphs(vec![g])), qb.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Embedding-level equivalence: merge, gallop and auto each produce the
    /// byte-identical sorted embedding set the baseline pivot scan does.
    #[test]
    fn kernels_produce_identical_embeddings((g, q) in arb_pair()) {
        let baseline = embeddings_with(KernelConfig::Baseline, &q, &g);
        for kernel in [
            KernelConfig::Merge,
            KernelConfig::Gallop,
            KernelConfig::Simd,
            KernelConfig::Auto,
        ] {
            let got = embeddings_with(kernel, &q, &g);
            prop_assert_eq!(&got, &baseline, "kernel {} diverged", kernel);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Database-level equivalence: every kernel returns the identical answer
    /// set and `QueryStatus` at 1, 2, 4 and 8 threads.
    #[test]
    fn kernels_agree_across_thread_counts((db, q) in arb_db_and_query()) {
        let baseline = {
            let pool = QueryPool::new(1);
            let m = Cfql::new().with_matcher_config(
                MatcherConfig::with_kernel(KernelConfig::Baseline));
            pool.query(Arc::new(m), &db, &q, Deadline::none()).outcome
        };
        prop_assert_eq!(baseline.status, QueryStatus::Completed);

        for kernel in KernelConfig::ALL {
            for threads in [1usize, 2, 4, 8] {
                let pool = QueryPool::new(threads);
                let m = Cfql::new().with_matcher_config(MatcherConfig::with_kernel(kernel));
                let got = pool.query(Arc::new(m), &db, &q, Deadline::none()).outcome;
                prop_assert_eq!(
                    &got.answers, &baseline.answers,
                    "kernel {} at {} threads: answer mismatch", kernel, threads
                );
                prop_assert_eq!(
                    got.status, baseline.status,
                    "kernel {} at {} threads: status mismatch", kernel, threads
                );
            }
        }
    }
}

/// The adaptive kernel actually exercises its fast paths on a hub-heavy
/// graph: intersections run, galloping fires on the skewed lists, and the
/// hub bitmap answers membership probes. Baseline keeps all counters at
/// zero. Also checks the engine-level sink plumbing end to end.
#[test]
fn auto_kernel_reports_fast_path_counters() {
    let (db, q) = hub_db();

    let mut auto_engine =
        GraphQlEngine::with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Auto));
    auto_engine.build(&db).unwrap();
    let auto_out = auto_engine.query(&q);
    assert_eq!(auto_out.status, QueryStatus::Completed);
    assert!(auto_out.kernel.intersections > 0, "auto ran no intersections: {:?}", auto_out.kernel);
    assert!(auto_out.kernel.bitmap_probes > 0, "auto never probed a hub bitmap");

    // On this workload the hub bitmap absorbs the skewed intersections, so
    // galloping is demonstrated with the forced kernel instead.
    let mut gallop_engine =
        GraphQlEngine::with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Gallop));
    gallop_engine.build(&db).unwrap();
    let gallop_out = gallop_engine.query(&q);
    assert_eq!(gallop_out.status, QueryStatus::Completed);
    assert!(gallop_out.kernel.gallop_hits > 0, "forced gallop kernel never galloped");
    assert_eq!(gallop_out.answers, auto_out.answers);

    let mut base_engine =
        GraphQlEngine::with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Baseline));
    base_engine.build(&db).unwrap();
    let base_out = base_engine.query(&q);
    assert_eq!(base_out.status, QueryStatus::Completed);
    assert!(base_out.kernel.is_zero(), "baseline touched a kernel: {:?}", base_out.kernel);
    assert_eq!(auto_out.answers, base_out.answers);
}

/// A complete tripartite graph over three label classes of `group` vertices,
/// optionally with `pad` isolated filler vertices interleaved to stretch the
/// id space. Every connected vertex has degree `2 * group`, so with
/// `group >= 32` every probed vertex is a hub: the adaptive kernel routes
/// every pairwise intersection through the compressed bitmap containers.
/// Interleaved padding widens each chunk's dense footprint, flipping the
/// containers from bitmap (compact ids) to array (sparse ids).
fn all_hub_db(group: u32, pad: u32) -> (Arc<GraphDb>, Graph) {
    let mut b = GraphBuilder::new();
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); 3];
    for i in 0..3 * group {
        groups[(i % 3) as usize].push(b.add_vertex(Label(i % 3)));
        for _ in 0..pad / (3 * group) {
            b.add_vertex(Label(9));
        }
    }
    for (la, ga) in groups.iter().enumerate() {
        for (lb, gb) in groups.iter().enumerate().skip(la + 1) {
            debug_assert!(la < lb);
            for &u in ga {
                for &v in gb {
                    let _ = b.add_edge(u, v);
                }
            }
        }
    }
    let g = b.build();
    let mut qb = GraphBuilder::new();
    qb.add_vertex(Label(0));
    qb.add_vertex(Label(1));
    qb.add_vertex(Label(2));
    let _ = qb.add_edge(VertexId(0), VertexId(1));
    let _ = qb.add_edge(VertexId(0), VertexId(2));
    let _ = qb.add_edge(VertexId(1), VertexId(2));
    (Arc::new(GraphDb::from_graphs(vec![g])), qb.build())
}

/// All-hub graphs (every probed vertex over the hub-degree threshold): every
/// kernel agrees with the baseline at 1/2/4/8 threads while `auto` routes
/// its intersections through the compressed bitmap containers — both the
/// dense-bitmap-container regime (compact id space) and the
/// array-container regime (padded id space).
#[test]
fn all_hub_graphs_agree_across_kernels_and_containers() {
    use subgraph_query::graph::{NeighborBitmaps, HUB_DEGREE_THRESHOLD};

    for pad in [0u32, 6000] {
        let (db, q) = all_hub_db(32, pad);
        let g = db.graph(subgraph_query::graph::database::GraphId(0));
        let bm = NeighborBitmaps::build(g, HUB_DEGREE_THRESHOLD);
        assert_eq!(bm.hub_count(), 96, "pad {pad}: every tripartite vertex is a hub");
        let (array, bitmap) = bm.container_counts();
        if pad == 0 {
            assert!(bitmap > 0 && array == 0, "compact ids must take bitmap containers");
        } else {
            assert!(array > 0 && bitmap == 0, "padded ids must take array containers");
        }

        let baseline = {
            let pool = QueryPool::new(1);
            let m = GraphQl::new()
                .with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Baseline));
            pool.query(Arc::new(m), &db, &q, Deadline::none()).outcome
        };
        assert_eq!(baseline.status, QueryStatus::Completed);
        assert!(!baseline.answers.is_empty(), "pad {pad}: the tripartite graph matches");

        for kernel in KernelConfig::ALL {
            for threads in [1usize, 2, 4, 8] {
                let pool = QueryPool::new(threads);
                let m = GraphQl::new().with_matcher_config(MatcherConfig::with_kernel(kernel));
                let got = pool.query(Arc::new(m), &db, &q, Deadline::none()).outcome;
                assert_eq!(
                    got.answers, baseline.answers,
                    "pad {pad}, kernel {kernel} at {threads} threads: answer mismatch"
                );
                assert_eq!(
                    got.status, baseline.status,
                    "pad {pad}, kernel {kernel} at {threads} threads: status mismatch"
                );
                if kernel == KernelConfig::Auto {
                    assert!(
                        got.kernel.bitmap_probes > 0,
                        "pad {pad}, {threads} threads: auto must probe the hub containers"
                    );
                }
            }
        }
    }
}

/// The forced SIMD kernel counts its vectorized steps (when the CPU has a
/// vector implementation and it is not disabled) and agrees with baseline.
#[test]
fn simd_kernel_reports_vectorized_steps() {
    let (db, q) = all_hub_db(32, 0);
    let mut simd_engine =
        GraphQlEngine::with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Simd));
    simd_engine.build(&db).unwrap();
    let simd_out = simd_engine.query(&q);
    assert_eq!(simd_out.status, QueryStatus::Completed);
    assert!(simd_out.kernel.intersections > 0);
    if subgraph_query::graph::simd::available() {
        assert_eq!(
            simd_out.kernel.simd_hits, simd_out.kernel.intersections,
            "forced SIMD must vectorize every intersection: {:?}",
            simd_out.kernel
        );
    } else {
        assert_eq!(simd_out.kernel.simd_hits, 0, "scalar fallback must not count simd hits");
    }

    let mut base_engine =
        GraphQlEngine::with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Baseline));
    base_engine.build(&db).unwrap();
    let base_out = base_engine.query(&q);
    assert_eq!(simd_out.answers, base_out.answers);
}

/// The pool's shared stats sink also surfaces kernel counters, at any
/// thread count, and the totals are thread-count independent.
#[test]
fn pool_kernel_counters_are_thread_count_independent() {
    let (db, q) = hub_db();
    let mut totals = Vec::new();
    for threads in [1usize, 2, 4] {
        let pool = QueryPool::new(threads);
        let m = GraphQl::new().with_matcher_config(MatcherConfig::with_kernel(KernelConfig::Auto));
        let out = pool.query(Arc::new(m), &db, &q, Deadline::none()).outcome;
        assert_eq!(out.status, QueryStatus::Completed);
        assert!(out.kernel.intersections > 0, "{threads} threads: no intersections");
        totals.push(out.kernel);
    }
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[1], totals[2]);
}

/// Budget-exhaustion accounting: the candidate-membership bitmap is part of
/// the candidate space's `heap_size()`, so a memory budget that sits between
/// the sets-only footprint and the full footprint must trip `Memory` — and a
/// budget covering the full footprint must not.
#[test]
fn bitmap_bytes_count_against_memory_budget() {
    let (db, q) = hub_db();
    let g = db.graph(subgraph_query::graph::database::GraphId(0));

    // Reproduce the exact space the pool will build, to size the budget.
    let matcher = Cfql::new();
    let space = match matcher.filter(&q, g, Deadline::none()).unwrap() {
        FilterResult::Space(space) => space,
        FilterResult::Pruned => panic!("hub query must not prune"),
    };
    let full = space.heap_size();
    let bitmap = space.bitmap_bytes();
    assert!(bitmap > 0, "hub space must carry a membership bitmap");
    assert!(full > bitmap, "heap_size must exceed the bitmap alone");

    // One byte short of the full footprint: inside the window that only
    // trips because bitmap bytes are accounted.
    let pool = QueryPool::new(2);
    let guard = ResourceGuard::new();
    guard.reset(ResourceLimits::unlimited().with_max_aux_bytes(full - 1));
    let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none().with_guard(guard));
    assert_eq!(
        r.outcome.status,
        QueryStatus::ResourceExhausted { kind: ResourceKind::Memory },
        "a sub-footprint budget must trip on bitmap bytes"
    );

    // The full footprint fits: no trip.
    guard.reset(ResourceLimits::unlimited().with_max_aux_bytes(full));
    let r = pool.query(Arc::new(Cfql::new()), &db, &q, Deadline::none().with_guard(guard));
    assert_eq!(r.outcome.status, QueryStatus::Completed);
}
