//! Differential tests of the dynamic-graph layer (invariant I10):
//!
//! * **(a)** enumeration over the mutable overlay is byte-identical to a
//!   from-scratch rebuild at every batch boundary, with continuous repair
//!   running at 1, 2, 4 and 8 threads;
//! * **(b)** overlay-then-compact produces a CSR fingerprint-equal to the
//!   rebuild of an independently-maintained reference model;
//! * **(c)** the continuously-repaired standing set equals a full re-query
//!   after every batch, including remove-heavy and add-remove-same-batch
//!   (churn) streams;
//! * maintained NLF signatures and the incrementally-refreshed fingerprint
//!   index equal freshly-computed ones after arbitrary streams;
//! * malformed update batches fail closed with a `GraphError` — atomically,
//!   and never by panicking.
//!
//! The update streams come from the fingerprint-seeded
//! [`UpdateStreamGen`](subgraph_query::core::chaos::UpdateStreamGen), whose
//! batches deliberately include duplicate-edge no-ops, same-batch
//! add-then-remove, and re-adds of tombstoned labels. The reference model
//! here is an independent reimplementation (label vector + edge set +
//! replay + `GraphBuilder` rebuild), so the overlay and the oracle share no
//! code beyond the update enum.

use std::collections::BTreeSet;

use proptest::prelude::*;

use subgraph_query::core::chaos::{graph_fingerprint, StreamProfile, UpdateStreamGen};
use subgraph_query::core::continuous::{BatchError, ContinuousMatcher, DynamicDb};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::nlf::NeighborhoodLabelFrequency;
use subgraph_query::graph::{
    CompactionPolicy, DynamicGraph, Graph, GraphBuilder, GraphDb, Label, Update, VertexId,
};
use subgraph_query::index::{BuildBudget, FingerprintIndex, GraphIndex};
use subgraph_query::matching::brute;
use subgraph_query::matching::dynmatch::enumerate_overlay;
use subgraph_query::matching::{Deadline, Embedding};

// ---------------------------------------------------------------------------
// Reference model: an independent replay of the update semantics
// ---------------------------------------------------------------------------

/// Labels + liveness + normalized edge set, rebuilt through `GraphBuilder`
/// with the same dense-renumbering rule as `DynamicGraph::materialize`
/// (live slots in ascending id order).
struct RefModel {
    labels: Vec<Label>,
    alive: Vec<bool>,
    edges: BTreeSet<(u32, u32)>,
}

fn norm(u: VertexId, v: VertexId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

impl RefModel {
    fn new(g: &Graph) -> Self {
        let mut edges = BTreeSet::new();
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                edges.insert(norm(u, v));
            }
        }
        Self {
            labels: g.vertices().map(|v| g.label(v)).collect(),
            alive: vec![true; g.vertex_count()],
            edges,
        }
    }

    fn apply(&mut self, batch: &[Update]) {
        for up in batch {
            match *up {
                Update::AddVertex { label } => {
                    self.labels.push(label);
                    self.alive.push(true);
                }
                Update::AddEdge { u, v } => {
                    self.edges.insert(norm(u, v)); // duplicate insert is the no-op
                }
                Update::RemoveEdge { u, v } => {
                    assert!(self.edges.remove(&norm(u, v)), "oracle desync: missing edge");
                }
                Update::RemoveVertex { vertex } => {
                    assert!(self.alive[vertex.index()], "oracle desync: dead vertex");
                    self.alive[vertex.index()] = false;
                    self.edges.retain(|&(a, b)| a != vertex.0 && b != vertex.0);
                }
            }
        }
    }

    /// Dense rebuild; returns the graph and the slot → new-id mapping.
    fn rebuild(&self) -> (Graph, Vec<Option<VertexId>>) {
        let mut b = GraphBuilder::new();
        let mut mapping = vec![None; self.labels.len()];
        for (slot, (&label, &alive)) in self.labels.iter().zip(&self.alive).enumerate() {
            if alive {
                mapping[slot] = Some(b.add_vertex(label));
            }
        }
        for &(u, v) in &self.edges {
            let (Some(nu), Some(nv)) = (mapping[u as usize], mapping[v as usize]) else {
                panic!("oracle desync: edge touches dead vertex");
            };
            b.add_edge(nu, nv).expect("oracle edge");
        }
        (b.build(), mapping)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn arb_base() -> impl Strategy<Value = Graph> {
    (4usize..14).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..28);
        (labels, edges).prop_map(|(ls, es)| {
            let mut b = GraphBuilder::new();
            for l in ls {
                b.add_vertex(Label(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = b.add_edge(VertexId::from(u), VertexId::from(v));
                }
            }
            b.build()
        })
    })
}

fn arb_profile() -> impl Strategy<Value = StreamProfile> {
    (0u8..4).prop_map(|i| match i {
        0 => StreamProfile::Mixed,
        1 => StreamProfile::AddHeavy,
        2 => StreamProfile::RemoveHeavy,
        _ => StreamProfile::Churn,
    })
}

/// Small connected-ish query shapes over the same label space.
fn queries() -> Vec<Graph> {
    let build = |labels: &[u32], edges: &[(u32, u32)]| {
        let mut b = GraphBuilder::new();
        for &l in labels {
            b.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v)).expect("query edge");
        }
        b.build()
    };
    vec![
        build(&[0, 1], &[(0, 1)]),
        build(&[1, 2, 0], &[(0, 1), (1, 2)]),
        build(&[0, 0, 1], &[(0, 1), (0, 2), (1, 2)]),
        build(&[2], &[]),
    ]
}

fn sorted(mut es: Vec<Embedding>) -> Vec<Embedding> {
    es.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
    es
}

/// Renumbers overlay-id embeddings through the rebuild mapping.
fn renumber(es: &[Embedding], mapping: &[Option<VertexId>]) -> Vec<Embedding> {
    es.iter()
        .map(|e| {
            Embedding::new(
                e.as_slice()
                    .iter()
                    .map(|&v| mapping[v.index()].expect("live image maps"))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    // Case count comes from PROPTEST_CASES (CI pins the I10 suite at 256).
    #![proptest_config(ProptestConfig::default())]

    /// (a) + (c): at every batch boundary, for every thread count, the
    /// repaired standing sets are identical across thread counts, equal to
    /// overlay enumeration, and — renumbered through the oracle's rebuild
    /// mapping — equal to brute-force enumeration on the rebuilt graph.
    #[test]
    fn repaired_equals_rebuild_at_every_boundary(
        base in arb_base(),
        seed in 0u64..1_000,
        profile in arb_profile(),
    ) {
        let qs = queries();
        let mut matchers: Vec<(usize, ContinuousMatcher)> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|t| {
                let mut m = ContinuousMatcher::new(base.clone(), CompactionPolicy::never());
                for q in &qs {
                    m.register(q.clone(), Deadline::none()).expect("register");
                }
                (t, m)
            })
            .collect();
        let mut stream = UpdateStreamGen::new(&base, seed, profile);
        let mut oracle = RefModel::new(&base);
        for _ in 0..4 {
            let batch = stream.batch(6);
            oracle.apply(&batch);
            let (rebuilt, mapping) = oracle.rebuild();
            let mut reference: Option<Vec<Vec<Embedding>>> = None;
            for (threads, m) in &mut matchers {
                m.apply_batch(&batch, *threads, Deadline::none()).expect("valid batch");
                let sets: Vec<Vec<Embedding>> =
                    m.standing().iter().map(|s| s.embeddings().to_vec()).collect();
                match &reference {
                    None => reference = Some(sets),
                    Some(want) => prop_assert_eq!(
                        &sets, want, "thread count {} diverged", threads
                    ),
                }
            }
            let (_, one) = &matchers[0];
            for (qi, q) in qs.iter().enumerate() {
                let repaired = one.standing()[qi].embeddings();
                // I10: repaired set == recomputed overlay enumeration.
                let requeried = enumerate_overlay(q, one.graph(), Deadline::none())
                    .expect("overlay enumeration");
                prop_assert_eq!(repaired, requeried.as_slice());
                // Differential vs the independent rebuild.
                let want = sorted(brute::enumerate_all(q, &rebuilt));
                prop_assert_eq!(sorted(renumber(repaired, &mapping)), want);
            }
        }
    }

    /// (b): overlay-then-compact is fingerprint-equal to the oracle rebuild,
    /// and enumeration is preserved through the compaction's renumbering.
    #[test]
    fn compaction_equals_rebuild(
        base in arb_base(),
        seed in 0u64..1_000,
        profile in arb_profile(),
    ) {
        let mut g = DynamicGraph::new(base.clone());
        let mut stream = UpdateStreamGen::new(&base, seed, profile);
        let mut oracle = RefModel::new(&base);
        for _ in 0..3 {
            let batch = stream.batch(8);
            oracle.apply(&batch);
            g.apply_batch(&batch).expect("valid batch");
        }
        let before: Vec<Vec<Embedding>> = queries()
            .iter()
            .map(|q| enumerate_overlay(q, &g, Deadline::none()).expect("pre-compact"))
            .collect();
        let report = g.compact();
        let (want, _) = oracle.rebuild();
        let (compacted, identity) = g.materialize();
        prop_assert_eq!(
            graph_fingerprint(&compacted),
            graph_fingerprint(&want),
            "compacted CSR differs from oracle rebuild"
        );
        // After compaction the overlay is dense: materialize is the identity.
        for (slot, m) in identity.iter().enumerate() {
            prop_assert_eq!(*m, Some(VertexId(slot as u32)));
        }
        for (q, old) in queries().iter().zip(before) {
            let now = enumerate_overlay(q, &g, Deadline::none()).expect("post-compact");
            prop_assert_eq!(sorted(renumber(&old, &report.mapping)), now);
        }
    }

    /// Maintained NLF signatures equal freshly-computed ones after any
    /// stream, for every live vertex.
    #[test]
    fn maintained_nlf_equals_fresh(
        base in arb_base(),
        seed in 0u64..1_000,
        profile in arb_profile(),
    ) {
        let mut g = DynamicGraph::new(base.clone());
        let mut stream = UpdateStreamGen::new(&base, seed, profile);
        for _ in 0..4 {
            g.apply_batch(&stream.batch(6)).expect("valid batch");
        }
        let live: Vec<VertexId> = g.live_vertices().collect();
        for &v in &live {
            // Adjacency is sorted by (label, id): labels arrive in runs.
            let mut runs: Vec<(Label, u32)> = Vec::new();
            for &w in g.neighbors(v) {
                let l = g.label(w);
                match runs.last_mut() {
                    Some((rl, n)) if *rl == l => *n += 1,
                    _ => runs.push((l, 1)),
                }
            }
            let fresh = NeighborhoodLabelFrequency::from_runs(runs);
            prop_assert_eq!(
                g.nlf_table().runs(v),
                fresh.runs(),
                "stale NLF for v{}", v.0
            );
        }
    }

    /// The incrementally-refreshed fingerprint index answers exactly like a
    /// fresh build over the materialized database.
    #[test]
    fn refreshed_index_equals_fresh_build(
        g0 in arb_base(),
        g1 in arb_base(),
        seed in 0u64..1_000,
    ) {
        let db = GraphDb::from_graphs(vec![g0, g1.clone()]);
        let mut ddb = DynamicDb::new(&db);
        let mut stream = UpdateStreamGen::new(&g1, seed, StreamProfile::Mixed);
        for _ in 0..3 {
            ddb.apply(GraphId(1), &stream.batch(5)).expect("valid batch");
        }
        ddb.refresh_index(&BuildBudget::unlimited()).expect("refresh");
        let rebuilt = ddb.materialize();
        let fresh = FingerprintIndex::build_default(&rebuilt);
        for q in queries().iter().chain(rebuilt.graphs()) {
            prop_assert_eq!(
                ddb.candidates(q).into_ids(rebuilt.len()),
                fresh.candidates(q).into_ids(rebuilt.len())
            );
        }
    }

    /// Malformed batches fail closed: a `GraphError`, atomically rejected,
    /// never a panic — and the repaired standing sets are untouched.
    #[test]
    fn malformed_batches_fail_closed(
        base in arb_base(),
        seed in 0u64..1_000,
    ) {
        let mut m = ContinuousMatcher::new(base.clone(), CompactionPolicy::never());
        let qid = m.register(queries().swap_remove(0), Deadline::none()).expect("register");
        let mut stream = UpdateStreamGen::new(&base, seed, StreamProfile::Mixed);
        // Advance so tombstones and edges exist, then attack the same state.
        for _ in 0..3 {
            m.apply_batch(&stream.batch(5), 2, Deadline::none()).expect("valid batch");
        }
        let embeddings = m.embeddings(qid).expect("standing set").to_vec();
        let fingerprint = graph_fingerprint(&m.graph().materialize().0);
        for case in stream.malformed_batches() {
            let err = m.apply_batch(&case, 2, Deadline::none());
            prop_assert!(
                matches!(err, Err(BatchError::Graph(_))),
                "malformed batch accepted: {:?}", case
            );
            prop_assert_eq!(m.embeddings(qid).expect("standing set"), embeddings.as_slice());
            prop_assert_eq!(graph_fingerprint(&m.graph().materialize().0), fingerprint);
        }
    }
}

/// Compaction policy thresholds: `maybe_compact` fires exactly when the
/// delta crosses max(min_ops, ratio × base edges), and the amortized
/// overlay keeps answering identically right through the compaction point.
#[test]
fn compaction_policy_fires_at_threshold() {
    let mut b = GraphBuilder::new();
    for i in 0..6 {
        b.add_vertex(Label(i % 3));
    }
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
        b.add_edge(VertexId(u), VertexId(v)).expect("edge");
    }
    let base = b.build();
    let policy = CompactionPolicy { min_delta_ops: 4, delta_ratio: 0.0 };
    let mut g = DynamicGraph::new(base.clone());
    let mut stream = UpdateStreamGen::new(&base, 3, StreamProfile::AddHeavy);
    let mut fired = 0;
    for _ in 0..6 {
        g.apply_batch(&stream.batch(2)).expect("valid");
        if g.maybe_compact(&policy).is_some() {
            fired += 1;
            assert_eq!(g.delta_ops(), 0, "compaction must reset the delta");
        }
    }
    assert!(fired >= 2, "threshold of 4 ops never crossed in 12 ops");
    assert_eq!(g.compactions() as usize, fired);
}
