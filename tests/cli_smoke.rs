//! End-to-end smoke tests of the `sqp` command-line tool: generate a
//! database, derive queries, run every subcommand, and check outputs.

use std::process::{Command, Output};

fn sqp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sqp")).args(args).output().expect("spawn sqp")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("sqp_cli_test_{}_{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_cli_workflow() {
    let db = tmp("db.txt");
    let dbbin = tmp("db.bin");
    let queries = tmp("q.txt");

    // generate (text)
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "30",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &db,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // generate (binary)
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "30",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &dbbin,
    ]);
    assert!(out.status.success());

    // stats agree between formats
    let s1 = sqp(&["stats", "--db", &db]);
    let s2 = sqp(&["stats", "--db", &dbbin]);
    assert!(s1.status.success() && s2.status.success());
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .filter(|l| !l.contains("resident"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&s1), strip(&s2));
    assert!(strip(&s1).contains("#graphs              30"));

    // queries
    let out = sqp(&["queries", "--db", &db, "--edges", "4", "--count", "5", "--out", &queries]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // query with two engines: answers per query must agree
    let answers = |engine: &str| -> Vec<String> {
        let out = sqp(&["query", "--db", &db, "--queries", &queries, "--engine", engine]);
        assert!(out.status.success(), "{engine}: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("query "))
            .map(|l| l.split("candidates").next().unwrap().trim().to_string())
            .collect()
    };
    assert_eq!(answers("CFQL"), answers("Grapes"));
    assert_eq!(answers("CFQL"), answers("TurboIso"));

    // kernel knob: answers are kernel-invariant and the summary line shows
    // the kernel counters
    let kernel_run = |kernel: &str| -> (Vec<String>, String) {
        let out = sqp(&[
            "query",
            "--db",
            &db,
            "--queries",
            &queries,
            "--engine",
            "CFQL",
            "--kernel",
            kernel,
        ]);
        assert!(out.status.success(), "kernel {kernel}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        let answers = text
            .lines()
            .filter(|l| l.starts_with("query "))
            .map(|l| l.split("candidates").next().unwrap().trim().to_string())
            .collect();
        (answers, text)
    };
    let (base_answers, base_text) = kernel_run("baseline");
    assert!(base_text.contains("kernel baseline"), "{base_text}");
    for kernel in ["auto", "merge", "gallop", "simd"] {
        let (a, text) = kernel_run(kernel);
        assert_eq!(a, base_answers, "kernel {kernel} changed answers");
        assert!(text.contains(&format!("kernel {kernel}")), "{text}");
        assert!(text.contains("intersections"), "{text}");
    }
    let out = sqp(&["query", "--db", &db, "--queries", &queries, "--kernel", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kernel"));

    // compare
    let out = sqp(&["compare", "--db", &db, "--queries", &queries, "--engines", "Grapes,CFQL"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("Grapes") && text.contains("CFQL"));

    // match
    let out = sqp(&["match", "--db", &db, "--queries", &queries, "--limit", "5"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("embeddings"));

    // index
    let out = sqp(&["index", "--db", &db, "--kind", "grapes"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Grapes"));

    for f in [db, dbbin, queries] {
        let _ = std::fs::remove_file(f);
    }
}

/// Satellite (f): degraded service runs exit 2 and tag records SHED /
/// QUARANTINED.
#[test]
fn degraded_service_runs_exit_two_with_tags() {
    let db = tmp("svc_db.txt");
    let queries = tmp("svc_q.txt");
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "20",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &db,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = sqp(&["queries", "--db", &db, "--edges", "4", "--count", "5", "--out", &queries]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Run A: every (query, graph) pair panics, breaker trips on the first
    // fault — query 0 reports the panics, every later query is served from
    // quarantine. Degraded => exit code 2.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--breaker-threshold",
        "1",
        "--breaker-cooldown",
        "100",
        "--chaos-panics",
        "1000",
        "--chaos-seed",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains(" PANIC"), "run A stdout:\n{text}");
    assert!(text.contains(" QUARANTINED"), "run A stdout:\n{text}");
    assert!(!text.contains(" SHED"), "run A must not shed:\n{text}");

    // Run B: admission queue of 2 against a burst of 5 — the overflow is
    // shed up front. Degraded => exit code 2.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--max-inflight",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(text.matches(" SHED").count(), 3, "burst of 5 into queue of 2 sheds 3:\n{text}");
    assert!(!text.contains("QUARANTINED"), "run B must not quarantine:\n{text}");

    // A healthy service run still exits 0.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--max-inflight",
        "64",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    for f in [db, queries] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn unknown_arguments_fail_cleanly() {
    let out = sqp(&["stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--db"));

    let out = sqp(&["frobnicate"]);
    assert!(!out.status.success());

    let out = sqp(&["query", "--db", "/nonexistent", "--queries", "/nonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = sqp(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("USAGE"));
    assert!(text.contains("compare"));
}
