//! End-to-end smoke tests of the `sqp` command-line tool: generate a
//! database, derive queries, run every subcommand, and check outputs.

use std::process::{Command, Output};

fn sqp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sqp")).args(args).output().expect("spawn sqp")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("sqp_cli_test_{}_{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_cli_workflow() {
    let db = tmp("db.txt");
    let dbbin = tmp("db.bin");
    let queries = tmp("q.txt");

    // generate (text)
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "30",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &db,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // generate (binary)
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "30",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &dbbin,
    ]);
    assert!(out.status.success());

    // stats agree between formats
    let s1 = sqp(&["stats", "--db", &db]);
    let s2 = sqp(&["stats", "--db", &dbbin]);
    assert!(s1.status.success() && s2.status.success());
    let strip = |o: &Output| {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .filter(|l| !l.contains("resident"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&s1), strip(&s2));
    assert!(strip(&s1).contains("#graphs              30"));

    // queries
    let out = sqp(&["queries", "--db", &db, "--edges", "4", "--count", "5", "--out", &queries]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // query with two engines: answers per query must agree
    let answers = |engine: &str| -> Vec<String> {
        let out = sqp(&["query", "--db", &db, "--queries", &queries, "--engine", engine]);
        assert!(out.status.success(), "{engine}: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("query "))
            .map(|l| l.split("candidates").next().unwrap().trim().to_string())
            .collect()
    };
    assert_eq!(answers("CFQL"), answers("Grapes"));
    assert_eq!(answers("CFQL"), answers("TurboIso"));

    // kernel knob: answers are kernel-invariant and the summary line shows
    // the kernel counters
    let kernel_run = |kernel: &str| -> (Vec<String>, String) {
        let out = sqp(&[
            "query",
            "--db",
            &db,
            "--queries",
            &queries,
            "--engine",
            "CFQL",
            "--kernel",
            kernel,
        ]);
        assert!(out.status.success(), "kernel {kernel}: {}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        let answers = text
            .lines()
            .filter(|l| l.starts_with("query "))
            .map(|l| l.split("candidates").next().unwrap().trim().to_string())
            .collect();
        (answers, text)
    };
    let (base_answers, base_text) = kernel_run("baseline");
    assert!(base_text.contains("kernel baseline"), "{base_text}");
    for kernel in ["auto", "merge", "gallop", "simd"] {
        let (a, text) = kernel_run(kernel);
        assert_eq!(a, base_answers, "kernel {kernel} changed answers");
        assert!(text.contains(&format!("kernel {kernel}")), "{text}");
        assert!(text.contains("intersections"), "{text}");
    }
    let out = sqp(&["query", "--db", &db, "--queries", &queries, "--kernel", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown kernel"));

    // compare
    let out = sqp(&["compare", "--db", &db, "--queries", &queries, "--engines", "Grapes,CFQL"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("Grapes") && text.contains("CFQL"));

    // match
    let out = sqp(&["match", "--db", &db, "--queries", &queries, "--limit", "5"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("embeddings"));

    // index
    let out = sqp(&["index", "--db", &db, "--kind", "grapes"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Grapes"));

    for f in [db, dbbin, queries] {
        let _ = std::fs::remove_file(f);
    }
}

/// Satellite (f): degraded service runs exit 2 and tag records SHED /
/// QUARANTINED.
#[test]
fn degraded_service_runs_exit_two_with_tags() {
    let db = tmp("svc_db.txt");
    let queries = tmp("svc_q.txt");
    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "20",
        "--vertices",
        "25",
        "--labels",
        "5",
        "--degree",
        "3",
        "--seed",
        "9",
        "--out",
        &db,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = sqp(&["queries", "--db", &db, "--edges", "4", "--count", "5", "--out", &queries]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Run A: every (query, graph) pair panics, breaker trips on the first
    // fault — query 0 reports the panics, every later query is served from
    // quarantine. Degraded => exit code 2.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--breaker-threshold",
        "1",
        "--breaker-cooldown",
        "100",
        "--chaos-panics",
        "1000",
        "--chaos-seed",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains(" PANIC"), "run A stdout:\n{text}");
    assert!(text.contains(" QUARANTINED"), "run A stdout:\n{text}");
    assert!(!text.contains(" SHED"), "run A must not shed:\n{text}");

    // Run B: admission queue of 2 against a burst of 5 — the overflow is
    // shed up front. Degraded => exit code 2.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--max-inflight",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(text.matches(" SHED").count(), 3, "burst of 5 into queue of 2 sheds 3:\n{text}");
    assert!(!text.contains("QUARANTINED"), "run B must not quarantine:\n{text}");

    // A healthy service run still exits 0.
    let out = sqp(&[
        "query",
        "--db",
        &db,
        "--queries",
        &queries,
        "--engine",
        "cfql",
        "--max-inflight",
        "64",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));

    for f in [db, queries] {
        let _ = std::fs::remove_file(f);
    }
}

/// `sqp update` end to end: standing queries registered up front, mixed
/// update/query traffic (batches interleaved with one-shot `query` reads),
/// per-batch delta lines, a compacted `--out` database that stays loadable,
/// Prometheus counters, and exit codes — 0 on success, 1 for malformed
/// streams and rejected batches (atomically, graph untouched).
#[test]
fn update_stream_with_mixed_traffic() {
    let db = tmp("upd_db.txt");
    let queries = tmp("upd_q.txt");
    let stream = tmp("upd_stream.txt");
    let outdb = tmp("upd_out.txt");
    let metrics = tmp("upd_metrics.txt");

    let out = sqp(&[
        "generate",
        "--kind",
        "synthetic",
        "--graphs",
        "2",
        "--vertices",
        "40",
        "--labels",
        "4",
        "--degree",
        "3",
        "--seed",
        "11",
        "--out",
        &db,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = sqp(&["queries", "--db", &db, "--edges", "2", "--count", "2", "--out", &queries]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Mixed traffic: two update batches with a one-shot standing-query read
    // between them (`query 0` flushes the open batch first).
    std::fs::write(
        &stream,
        "# add a fresh vertex and wire it into the graph\n\
         av 1\nae 40 0\nae 40 2\n--\n\
         query 0\n\
         re 40 0\nrv 3\n--\n",
    )
    .expect("write stream");
    let out = sqp(&[
        "update",
        "--db",
        &db,
        "--graph",
        "0",
        "--updates",
        &stream,
        "--queries",
        &queries,
        "--threads",
        "2",
        "--out",
        &outdb,
        "--metrics-out",
        &metrics,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("standing query 0:"), "missing registration line:\n{text}");
    assert!(text.contains("batch 1: applied 3"), "missing batch line:\n{text}");
    assert!(text.lines().any(|l| l.starts_with("query 0:")), "missing one-shot read:\n{text}");
    assert!(text.contains("applied 5 updates in 2 batches"), "missing summary:\n{text}");

    // The compacted output database loads and reports the same graph count.
    let out = sqp(&["stats", "--db", &outdb]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("#graphs              2"));

    // Metrics carry the continuous counter families.
    let m = std::fs::read_to_string(&metrics).expect("metrics file");
    assert!(m.contains("sqp_updates_applied_total 5"), "bad metrics:\n{m}");
    assert!(m.contains("sqp_update_batches_total 2"));
    assert!(m.contains("sqp_continuous_repairs_total"));
    assert!(m.contains("sqp_compactions_total"));

    // A malformed line is a usage error: exit 1.
    std::fs::write(&stream, "frob 1 2\n").expect("write stream");
    let out = sqp(&["update", "--db", &db, "--updates", &stream]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unparseable update"));

    // A well-formed but invalid batch (double-remove of one vertex, caught
    // by the pre-validation simulation) is rejected atomically: exit 1.
    std::fs::write(&stream, "rv 0\nrv 0\n--\n").expect("write stream");
    let out = sqp(&["update", "--db", &db, "--updates", &stream]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("rejected"), "unexpected stderr:\n{err}");

    // --watch reads the stream from stdin until `quit`.
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_sqp"))
        .args(["update", "--db", &db, "--queries", &queries, "--watch"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn sqp --watch");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"ae 0 5\n--\nquery 0\nquit\n")
        .expect("feed watch stream");
    let out = child.wait_with_output().expect("watch run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("batch 1:"), "watch mode missed the batch:\n{text}");
    assert!(text.lines().any(|l| l.starts_with("query 0:")), "watch missed the read:\n{text}");

    for f in [db, queries, stream, outdb, metrics] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn unknown_arguments_fail_cleanly() {
    let out = sqp(&["stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--db"));

    let out = sqp(&["frobnicate"]);
    assert!(!out.status.success());

    let out = sqp(&["query", "--db", "/nonexistent", "--queries", "/nonexistent"]);
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = sqp(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("USAGE"));
    assert!(text.contains("compare"));
}
