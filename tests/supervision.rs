//! Supervised-execution suite (DESIGN.md "Supervision & recovery",
//! invariant I8 extended to wedged workers):
//!
//! * a query wedged on a matcher that never ticks its deadline is escalated
//!   by the heartbeat supervisor: the query resolves [`QueryStatus::Wedged`]
//!   shortly after `deadline + grace`, the stuck worker thread is abandoned,
//!   and a replacement keeps the pool at full capacity — at every thread
//!   count;
//! * queries that do **not** hit the wedge pair return answers byte-identical
//!   to a fault-free run, at every thread count;
//! * a [`QueryService`] drain over a wedged worker terminates with a
//!   [`DrainReport`] and surfaces the wedge in [`ServiceHealth`];
//! * the run journal replays any byte-truncation (torn tail) to a *prefix*
//!   of the completed set — never a false completion (property-tested);
//! * `--resume` semantics: a journaled re-run skips exactly the completed
//!   queries and re-runs the rest.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use subgraph_query::core::chaos::{graph_fingerprint, torn_tail};
use subgraph_query::core::prelude::*;
use subgraph_query::core::runner::run_query_set_parallel_journaled;
use subgraph_query::datagen::graphgen;
use subgraph_query::datagen::query::{generate_query_set, QueryGenMethod, QuerySetSpec};
use subgraph_query::graph::database::GraphId;
use subgraph_query::graph::{Graph, GraphDb};
use subgraph_query::matching::cfql::Cfql;
use subgraph_query::matching::{Deadline, Matcher};

/// Small fixture: 12 data graphs x 6 queries, collision-free fingerprints.
fn fixture() -> (Arc<GraphDb>, Vec<Graph>) {
    let db = Arc::new(graphgen::generate(12, 14, 4, 3.0, 19));
    let spec = QuerySetSpec { edges: 4, method: QueryGenMethod::RandomWalk, count: 6 };
    let queries = generate_query_set(&db, spec, 23);
    assert_eq!(queries.len(), 6);
    let mut fps: Vec<u64> =
        db.graphs().iter().chain(queries.iter()).map(graph_fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), db.len() + queries.len(), "fingerprint collision in fixture");
    (db, queries)
}

/// Supervisor tuned for test latency: tight grace and scan cadence.
fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        grace: Duration::from_millis(50),
        scan_interval: Duration::from_millis(10),
        stale_after: Duration::from_millis(50),
    }
}

const BUDGET: Duration = Duration::from_millis(100);

/// Wedge pair: query 0 against data graph 0.
fn stuck_matcher(db: &GraphDb, queries: &[Graph]) -> Arc<StuckMatcher> {
    Arc::new(StuckMatcher::new(
        Arc::new(Cfql::new()),
        graph_fingerprint(&queries[0]),
        graph_fingerprint(db.graph(GraphId(0))),
    ))
}

#[test]
fn wedged_query_is_escalated_and_pool_keeps_capacity() {
    let (db, queries) = fixture();
    for threads in [1usize, 2, 4, 8] {
        let stuck = stuck_matcher(&db, &queries);
        let release = stuck.release_handle();
        let matcher: Arc<dyn Matcher> = stuck;
        let pool = QueryPool::supervised("sup-cap", threads, fast_supervisor());

        let t0 = Instant::now();
        let out = pool.query(Arc::clone(&matcher), &db, &queries[0], Deadline::after(BUDGET));
        let elapsed = t0.elapsed();
        assert_eq!(
            out.outcome.status,
            QueryStatus::Wedged,
            "threads={threads}: wedged query must resolve Wedged"
        );
        assert!(elapsed >= BUDGET, "threads={threads}: cannot escalate before the deadline passes");
        // `deadline + grace` is 150ms; the bound below is loose only to
        // absorb CI scheduling noise, not a different escalation latency.
        assert!(elapsed < Duration::from_secs(5), "threads={threads}: escalation took {elapsed:?}");
        assert!(
            out.outcome.failures.iter().any(|f| f.status == QueryStatus::Wedged),
            "threads={threads}: the wedged graph must be attributed"
        );
        assert_eq!(pool.wedged_queries(), 1, "threads={threads}");
        assert!(pool.workers_replaced() >= 1, "threads={threads}");
        assert_eq!(
            pool.threads(),
            threads,
            "threads={threads}: replacement must restore full capacity"
        );

        // The pool keeps serving: the remaining queries complete normally
        // (they never touch the wedge pair) while the abandoned worker is
        // still asleep inside the matcher.
        for q in &queries[1..] {
            let out = pool.query(Arc::clone(&matcher), &db, q, Deadline::after(BUDGET));
            assert_eq!(out.outcome.status, QueryStatus::Completed, "threads={threads}");
        }
        // Let the abandoned thread exit before the pool is dropped.
        release.store(true, std::sync::atomic::Ordering::Release);
    }
}

/// Invariant I8, extended: a wedge on one (query, graph) pair never perturbs
/// any other query's answers, at every thread count.
#[test]
fn wedge_escalation_preserves_nonwedged_results() {
    let (db, queries) = fixture();
    // Fault-free reference.
    let baseline: Vec<QueryOutcome> = {
        let pool = QueryPool::new(1);
        let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
        queries
            .iter()
            .map(|q| pool.query(Arc::clone(&matcher), &db, q, Deadline::after(BUDGET)).outcome)
            .collect()
    };
    assert!(baseline.iter().all(|o| o.status == QueryStatus::Completed));

    for threads in [1usize, 2, 4, 8] {
        let stuck = stuck_matcher(&db, &queries);
        let release = stuck.release_handle();
        let matcher: Arc<dyn Matcher> = stuck;
        let pool = QueryPool::supervised("sup-i8", threads, fast_supervisor());
        let outcomes: Vec<QueryOutcome> = queries
            .iter()
            .map(|q| pool.query(Arc::clone(&matcher), &db, q, Deadline::after(BUDGET)).outcome)
            .collect();

        assert_eq!(outcomes[0].status, QueryStatus::Wedged, "threads={threads}");
        for (i, (got, want)) in outcomes.iter().zip(&baseline).enumerate().skip(1) {
            assert_eq!(got.status, QueryStatus::Completed, "threads={threads} query {i}");
            assert_eq!(
                got.answers, want.answers,
                "threads={threads} query {i}: answers must be byte-identical"
            );
        }
        release.store(true, std::sync::atomic::Ordering::Release);
    }
}

/// A service drain over a wedged worker must still terminate with a
/// [`DrainReport`], and the wedge must show up in [`ServiceHealth`].
#[test]
fn service_drain_terminates_despite_wedged_worker() {
    let (db, queries) = fixture();
    let stuck = stuck_matcher(&db, &queries);
    let release = stuck.release_handle();
    let matcher: Arc<dyn Matcher> = stuck;
    let config = ServiceConfig {
        threads: 2,
        runner: RunnerConfig::with_budget(BUDGET),
        supervisor: Some(fast_supervisor()),
        thread_prefix: "sup-svc".into(),
        ..Default::default()
    };
    let service = QueryService::new(matcher, Arc::clone(&db), config);
    let tickets = service.submit_batch(&queries);
    for (ticket, _) in &tickets {
        let (outcome, _) = ticket.wait();
        let _ = outcome;
    }
    let health = service.health();
    assert_eq!(health.wedged_queries, 1);
    assert!(health.workers_replaced >= 1);
    let report = service.shutdown();
    assert!(report.drained_within_deadline, "drain must reach a terminal report");
    release.store(true, std::sync::atomic::Ordering::Release);
}

// ---------------------------------------------------------------------------
// Journal torn-tail property + resume semantics
// ---------------------------------------------------------------------------

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sqp-supervision-{name}-{}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte-truncation of a journal replays to a prefix of the completed
    /// set: record k is recovered iff every byte of records 0..=k survived.
    /// No cut can fabricate a completion that was never written.
    #[test]
    fn any_truncation_replays_to_a_prefix(n in 1usize..20, seed in any::<u64>()) {
        let path = tmp(&format!("torn-{n}-{seed}"));
        let db_fp = 0xfeed;
        let mut j = RunJournal::create(&path, db_fp).unwrap();
        let mut line_ends = Vec::new();
        for i in 0..n {
            j.record(i as u64, &QueryStatus::Completed, i, "CFQL").unwrap();
            line_ends.push(std::fs::metadata(&path).unwrap().len() as usize);
        }
        drop(j);

        let bytes = std::fs::read(&path).unwrap();
        let torn = torn_tail(&bytes, seed);
        std::fs::write(&path, torn).unwrap();

        let j = RunJournal::resume(&path, db_fp).unwrap();
        // The survivors are exactly the records whose final byte survived.
        let intact = line_ends.iter().filter(|&&end| end <= torn.len()).count();
        prop_assert_eq!(j.stats().replayed, intact as u64);
        for i in 0..n {
            prop_assert_eq!(j.is_done(i as u64), i < intact, "record {} after cut {}", i, torn.len());
        }
        std::fs::remove_file(&path).ok();
    }
}

/// `--resume` end-to-end at the runner layer: a second journaled run skips
/// exactly the queries the first run completed and re-runs the rest.
#[test]
fn journaled_rerun_skips_completed_queries_only() {
    let (db, queries) = fixture();
    let path = tmp("resume");
    let db_fp = db_fingerprint(&db);
    let pool = QueryPool::new(2);
    let matcher: Arc<dyn Matcher> = Arc::new(Cfql::new());
    let config = RunnerConfig::with_budget(Duration::from_secs(10));

    // First run covers only the first half of the set (simulating a kill).
    let mut journal = RunJournal::create(&path, db_fp).unwrap();
    let first = run_query_set_parallel_journaled(
        &pool,
        Arc::clone(&matcher),
        &db,
        "CFQL",
        "resume",
        &queries[..3],
        config,
        Some(&mut journal),
    );
    assert_eq!(first.records.len(), 3);
    assert_eq!(journal.stats().appended, 3);
    drop(journal);

    // The resumed run over the full set re-runs only the unfinished tail.
    let mut journal = RunJournal::resume(&path, db_fp).unwrap();
    assert_eq!(journal.stats().replayed, 3);
    let second = run_query_set_parallel_journaled(
        &pool,
        matcher,
        &db,
        "CFQL",
        "resume",
        &queries,
        config,
        Some(&mut journal),
    );
    assert_eq!(second.records.len(), queries.len() - 3, "completed queries must be skipped");
    assert_eq!(journal.stats().skipped, 3);
    assert_eq!(journal.stats().appended, queries.len() as u64 - 3);
    assert_eq!(journal.done_count(), queries.len());
    std::fs::remove_file(&path).ok();
}
