//! Exposition-format and histogram guarantees:
//!
//! * the Prometheus text rendering is well-formed — each metric family has
//!   exactly one `# HELP`/`# TYPE` header emitted before any of its samples,
//!   no metric name appears under two headers, histogram bucket series are
//!   cumulative and end with `le="+Inf"` — and a fully deterministic report
//!   renders byte-identically to the checked-in golden file;
//! * `LatencyHistogram` merge is exact (merge == histogram of concatenated
//!   samples) and quantiles are the bucket upper bound of the true order
//!   statistic (property-tested);
//! * phase timings are deterministic under an injected fake clock: the
//!   per-phase totals of a pooled query are byte-identical across runs and
//!   across 1/2/4/8 worker threads (invariant I8 extended to phase timings).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use subgraph_query::core::engines::matcher_by_name;
use subgraph_query::core::exposition;
use subgraph_query::core::metrics::LatencyHistogram;
use subgraph_query::core::parallel::QueryPool;
use subgraph_query::core::{QueryRecord, QuerySetReport, QueryStatus, ServiceHealth};
use subgraph_query::graph::{GraphBuilder, GraphDb, Label, VertexId};
use subgraph_query::matching::{Deadline, KernelStats, Phase, PhaseStats, StatsSink};

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

/// A deterministic report: every field written by hand, no clocks involved.
fn fixed_report() -> QuerySetReport {
    let mut r = QuerySetReport::new("CFQL", "Q8S");
    r.records.push(QueryRecord {
        filter_time: Duration::from_micros(1500),
        verify_time: Duration::from_micros(500),
        candidates: 4,
        answers: 2,
        kernel: KernelStats { intersections: 12, gallop_hits: 3, simd_hits: 5, bitmap_probes: 40 },
        phases: PhaseStats {
            nanos: [1_200_000, 300_000, 50_000, 400_000, 0],
            items: [4, 4, 8, 2, 0],
        },
        ..QueryRecord::default()
    });
    r.records.push(QueryRecord {
        status: QueryStatus::TimedOut,
        filter_time: Duration::from_secs(600),
        ..QueryRecord::default()
    });
    r.records.push(QueryRecord { status: QueryStatus::Shed, ..QueryRecord::default() });
    r.records.push(QueryRecord { status: QueryStatus::Wedged, ..QueryRecord::default() });
    r
}

fn fixed_health() -> ServiceHealth {
    ServiceHealth {
        queue_depth: 3,
        inflight: 1,
        draining: false,
        admitted: 40,
        finished: 36,
        shed_queue_full: 2,
        shed_deadline: 1,
        shed_draining: 0,
        open_breakers: 1,
        half_open_breakers: 0,
        breaker_trips: 2,
        quarantined_graph_results: 17,
        wedged_queries: 1,
        workers_replaced: 1,
    }
}

fn fixed_journal() -> subgraph_query::core::JournalStats {
    subgraph_query::core::JournalStats { replayed: 5, appended: 3, skipped: 5 }
}

fn fixed_routing() -> subgraph_query::core::RoutingStats {
    subgraph_query::core::RoutingStats {
        routed: vec![
            ("CFQL".to_string(), 6),
            ("GraphQL".to_string(), 1),
            ("QuickSI".to_string(), 0),
            ("Ullmann".to_string(), 1),
        ],
        mispredicts: 1,
        predicted_nanos: 2_000_000.0,
        actual_nanos: 3_000_000.0,
    }
}

/// The family a sample line belongs to (histogram suffixes stripped).
fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample_name.strip_suffix(suffix) {
            return stripped;
        }
    }
    sample_name
}

#[test]
fn rendering_matches_the_golden_file() {
    let text = exposition::render_full(
        &[fixed_report()],
        Some(&fixed_health()),
        Some(&fixed_journal()),
        Some(&fixed_routing()),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var("REGEN_GOLDEN").is_ok() {
        std::fs::write(path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path).expect("tests/golden/metrics.prom missing");
    assert_eq!(
        text, golden,
        "exposition drifted from tests/golden/metrics.prom; if the change is \
         intentional, regenerate with REGEN_GOLDEN=1"
    );
}

#[test]
fn no_metric_name_is_emitted_twice() {
    let text = exposition::render(&[fixed_report(), fixed_report()], Some(&fixed_health()));
    let mut seen = HashMap::new();
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = line.split_whitespace().nth(2).unwrap();
        assert!(seen.insert(name, ()).is_none(), "duplicate # TYPE for {name}");
    }
    let mut help = HashMap::new();
    for line in text.lines().filter(|l| l.starts_with("# HELP ")) {
        let name = line.split_whitespace().nth(2).unwrap();
        assert!(help.insert(name, ()).is_none(), "duplicate # HELP for {name}");
    }
}

#[test]
fn type_header_precedes_every_sample_of_its_family() {
    let text = exposition::render(&[fixed_report()], Some(&fixed_health()));
    let mut typed: HashMap<String, ()> = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split_whitespace().next().unwrap().to_string(), ());
        } else if !line.starts_with('#') && !line.is_empty() {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                typed.contains_key(family_of(name)),
                "sample {name} appears before its # TYPE header"
            );
        }
    }
}

#[test]
fn histogram_buckets_are_cumulative_and_end_with_inf() {
    let text = exposition::render(&[fixed_report()], Some(&fixed_health()));
    // Group bucket samples per (family, label-set-minus-le) in order.
    let mut series: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    for line in text.lines().filter(|l| !l.starts_with('#') && l.contains("_bucket{")) {
        let (name_labels, value) = line.rsplit_once(' ').unwrap();
        let (name, labels) = name_labels.split_once('{').unwrap();
        let labels = labels.trim_end_matches('}');
        let mut le = String::new();
        let rest: Vec<&str> = labels
            .split(',')
            .filter(|kv| {
                if let Some(v) = kv.strip_prefix("le=") {
                    le = v.trim_matches('"').to_string();
                    false
                } else {
                    true
                }
            })
            .collect();
        let key = format!("{name}{{{}}}", rest.join(","));
        series.entry(key).or_default().push((le, value.parse().unwrap()));
    }
    assert!(!series.is_empty(), "no histogram bucket series rendered");
    for (key, buckets) in series {
        let mut prev = f64::NEG_INFINITY;
        for (_, count) in &buckets {
            assert!(*count >= prev, "{key}: bucket counts are not cumulative");
            prev = *count;
        }
        assert_eq!(buckets.last().unwrap().0, "+Inf", "{key}: series must end with +Inf");
    }
}

#[test]
fn censored_records_appear_in_counts_but_not_histograms() {
    let report = fixed_report();
    let text = exposition::render(std::slice::from_ref(&report), None);
    // 1 completed + 1 timed-out + 1 shed + 1 wedged in the status counter...
    assert!(text.contains(r#"status="completed"} 1"#));
    assert!(text.contains(r#"status="timed_out"} 1"#));
    assert!(text.contains(r#"status="shed"} 1"#));
    assert!(text.contains(r#"status="wedged"} 1"#));
    assert!(text.contains(r#"sqp_censored_queries_total{engine="CFQL",query_set="Q8S"} 3"#));
    // ...but only the completed one in the latency histogram.
    assert!(text.contains(r#"sqp_query_seconds_count{engine="CFQL",query_set="Q8S"} 1"#));
}

// ---------------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fixed buckets make merge exact: merging two histograms equals the
    /// histogram of the concatenated sample stream.
    #[test]
    fn merge_equals_concatenation(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let mut merged = LatencyHistogram::from_samples(xs.iter().copied());
        merged.merge(&LatencyHistogram::from_samples(ys.iter().copied()));
        let concat = LatencyHistogram::from_samples(xs.iter().chain(ys.iter()).copied());
        prop_assert_eq!(merged, concat);
    }

    /// A quantile is exactly the upper edge of the bucket holding the true
    /// order statistic — an upper bound within one power of two.
    #[test]
    fn quantiles_are_bucket_upper_bounds_of_the_order_statistic(
        mut samples in proptest::collection::vec(any::<u64>(), 1..60),
        q_pct in 1u32..100,
    ) {
        let q = f64::from(q_pct) / 100.0;
        let h = LatencyHistogram::from_samples(samples.iter().copied());
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let true_stat = samples[rank - 1];
        let got = h.quantile(q).unwrap();
        prop_assert_eq!(
            got,
            LatencyHistogram::upper_edge(LatencyHistogram::bucket_of(true_stat))
        );
        prop_assert!(got >= true_stat);
    }
}

#[test]
fn empty_histogram_is_quantile_safe() {
    let h = LatencyHistogram::new();
    assert_eq!(h.p50(), None);
    assert_eq!(h.p95(), None);
    assert_eq!(h.p99(), None);
    assert_eq!(h.quantile(2.0), None);
    assert_eq!(h.quantile(-1.0), None);
}

// ---------------------------------------------------------------------------
// Deterministic phase timings (invariant I8, extended)
// ---------------------------------------------------------------------------

/// A deterministic tick source: each call returns the next integer,
/// per-thread. Span durations become pure span-nesting counts, independent
/// of wall time and scheduling.
fn fake_clock() -> u64 {
    use std::cell::Cell;
    thread_local! { static T: Cell<u64> = const { Cell::new(0) }; }
    T.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    })
}

/// A small fixed database and query (no randomness).
fn fixture() -> (Arc<GraphDb>, subgraph_query::graph::Graph) {
    let mut graphs = Vec::new();
    for i in 0..12u32 {
        let mut b = GraphBuilder::new();
        for v in 0..8u32 {
            b.add_vertex(Label((v + i) % 3));
        }
        for v in 0..8u32 {
            let _ = b.add_edge(VertexId(v), VertexId((v + 1) % 8));
            let _ = b.add_edge(VertexId(v), VertexId((v + 3) % 8));
        }
        graphs.push(b.build());
    }
    let mut qb = GraphBuilder::new();
    qb.add_vertex(Label(0));
    qb.add_vertex(Label(1));
    qb.add_vertex(Label(2));
    let _ = qb.add_edge(VertexId(0), VertexId(1));
    let _ = qb.add_edge(VertexId(1), VertexId(2));
    (Arc::new(GraphDb::from_graphs(graphs)), qb.build())
}

#[test]
fn phase_timings_are_byte_stable_across_runs_and_thread_counts() {
    let (db, q) = fixture();
    let sink = StatsSink::with_clock(fake_clock);
    let mut observed: Vec<PhaseStats> = Vec::new();
    for threads in [1usize, 2, 4, 8, 1] {
        sink.reset();
        let pool = QueryPool::new(threads);
        let matcher = matcher_by_name("CFQL").unwrap();
        // Injecting our sink keeps the pool from attaching its own.
        let out = pool.query(matcher, &db, &q, Deadline::none().with_stats(sink)).outcome;
        assert_eq!(out.status, QueryStatus::Completed);
        assert!(out.phases.nanos_of(Phase::Filter) > 0, "no filter ticks recorded");
        observed.push(out.phases);
    }
    for pair in observed.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "phase tick totals must be identical across thread counts and repeat runs"
        );
    }
}
