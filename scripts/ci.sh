#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root:
#
#   scripts/ci.sh            # full gate: build, test, fmt, clippy
#   scripts/ci.sh --fast     # skip clippy (quick pre-commit check)
#
# The build environment has no crates.io access; every external dependency is
# vendored under vendor/, so all steps run with --offline.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> io robustness corpus (malformed t/v/e inputs)"
cargo test -q --offline --test io_robustness

echo "==> chaos suite (fixed seeds, 1/2/4/8 threads; breaker lifecycle, drain, serving determinism)"
# Deterministic fault injection: seeds pinned in tests/chaos.rs and
# EXPERIMENTS.md. PROPTEST_CASES bounds the randomized isolation property
# and the serving-determinism property.
PROPTEST_CASES=32 cargo test -q --offline --test chaos

echo "==> kernel equivalence (all kernels x 1/2/4/8 threads, bitmap memory accounting)"
PROPTEST_CASES=16 cargo test -q --offline --test kernel_equivalence

echo "==> kernel equivalence, forced scalar fallback (SQP_FORCE_SCALAR=1: simd kernel must degrade to merge, not diverge)"
SQP_FORCE_SCALAR=1 PROPTEST_CASES=16 cargo test -q --offline --test kernel_equivalence

echo "==> calibration bench smoke (writes results/BENCH_calibration_smoke.json)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench calibration

echo "==> oracle equivalence sweep (all matchers + engines vs brute oracle, pool at 1/2/4/8 threads)"
PROPTEST_CASES=256 cargo test -q --offline --test oracle_equivalence

echo "==> metrics format (golden exposition file, histogram properties, deterministic phase clocks)"
cargo test -q --offline --test metrics_format

echo "==> supervision suite (wedge escalation at 1/2/4/8 threads, journal torn-tail property, resume skip)"
PROPTEST_CASES=32 cargo test -q --offline --test supervision

echo "==> wire protocol suite (frame round-trip; truncation/bit-flip/over-cap fail closed)"
PROPTEST_CASES=32 cargo test -q --offline --test wire

echo "==> distributed serving suite (loopback shard clusters: dead/slow/silent/corrupting shard matrix at 1/2/4/8 scatter threads)"
cargo test -q --offline --test distributed

echo "==> kill-then-resume smoke (journaled run killed mid-flight; --resume re-runs only the incomplete tail)"
smoke_dir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$smoke_dir"' EXIT
sqp=target/release/sqp
"$sqp" generate --kind synthetic --graphs 30 --vertices 12 --labels 4 --seed 5 \
  --out "$smoke_dir/db.bin" >/dev/null
"$sqp" queries --db "$smoke_dir/db.bin" --edges 4 --count 12 --seed 9 \
  --out "$smoke_dir/q.txt" >/dev/null
# First run: every matcher filter call is slowed so the run is guaranteed to
# still be in flight when SIGKILL lands mid-set.
timeout -s KILL 2 "$sqp" query --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --threads 2 --chaos-slow-ms 40 --journal "$smoke_dir/run.journal" >/dev/null 2>&1 || true
done_before=$(wc -l < "$smoke_dir/run.journal")
if [[ "$done_before" -ge 12 ]]; then
  echo "smoke error: first run finished all 12 queries before the kill; nothing to resume" >&2
  exit 1
fi
# Resumed run (no slowdown) must finish the set, re-running only the tail.
"$sqp" query --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --threads 2 --journal "$smoke_dir/run.journal" --resume >/dev/null
total=$(wc -l < "$smoke_dir/run.journal")
uniq_fps=$(awk '{print $3}' "$smoke_dir/run.journal" | sort | uniq -d | wc -l)
if [[ "$total" -ne 12 || "$uniq_fps" -ne 0 ]]; then
  echo "smoke error: expected 12 unique journal records (got $total lines, $uniq_fps duplicated fingerprints) — resume re-ran completed work" >&2
  exit 1
fi
echo "    kill-then-resume: $done_before completed before kill, $((12 - done_before)) resumed, no duplicates"

echo "==> sharded serving smoke (3-shard loopback cluster; one shard SIGKILLed -> exit 2, partial results, /metrics scrape)"
wait_listening() { # file -> prints the ADDR from the first "listening ADDR" line
  for _ in $(seq 1 200); do
    if grep -q '^listening ' "$1" 2>/dev/null; then
      awk '/^listening /{print $2; exit}' "$1"
      return 0
    fi
    sleep 0.05
  done
  echo "smoke error: no 'listening' line in $1 after 10s" >&2
  return 1
}
shard_pids=()
for i in 0 1 2; do
  target/release/sqp-shard --db "$smoke_dir/db.bin" --shard-index "$i" --shards 3 \
    > "$smoke_dir/shard$i.out" 2> "$smoke_dir/shard$i.err" &
  shard_pids+=($!)
done
shard_addrs=()
for i in 0 1 2; do
  shard_addrs+=("$(wait_listening "$smoke_dir/shard$i.out")")
done
# Fast retry/idle knobs so the dead-shard read deadline does not dominate the smoke.
"$sqp" serve --db "$smoke_dir/db.bin" \
  --shards "${shard_addrs[0]},${shard_addrs[1]},${shard_addrs[2]}" \
  --retries 1 --retry-backoff-ms 5 --idle-timeout-ms 500 \
  --metrics-addr 127.0.0.1:0 \
  > "$smoke_dir/serve.out" 2> "$smoke_dir/serve.err" &
serve_pid=$!
serve_addr=$(wait_listening "$smoke_dir/serve.out")
# Healthy cluster: every query completes, exit 0, nothing Unavailable.
"$sqp" client --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --addr "$serve_addr" > "$smoke_dir/client_healthy.out"
if grep -q 'UNAVAILABLE' "$smoke_dir/client_healthy.out"; then
  echo "smoke error: healthy cluster reported UNAVAILABLE results" >&2
  exit 1
fi
# SIGKILL shard 1: the same query set must now degrade (exit 2) to partial
# results with the dead shard's graphs attributed UNAVAILABLE — never a
# whole-run failure.
kill -9 "${shard_pids[1]}"
wait "${shard_pids[1]}" 2>/dev/null || true
set +e
"$sqp" client --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --addr "$serve_addr" > "$smoke_dir/client_degraded.out"
degraded_rc=$?
set -e
if [[ "$degraded_rc" -ne 2 ]]; then
  echo "smoke error: degraded client run must exit 2 (got $degraded_rc)" >&2
  exit 1
fi
if ! grep -q 'UNAVAILABLE' "$smoke_dir/client_degraded.out"; then
  echo "smoke error: degraded run did not attribute the dead shard UNAVAILABLE" >&2
  exit 1
fi
# Scrape the coordinator's Prometheus endpoint: all four sqp_shard_* families
# must be present, and the dead peer's breaker must have left Closed.
metrics_hostport=$(sed -n 's#^metrics on http://\([^/]*\)/metrics$#\1#p' "$smoke_dir/serve.err" | head -n1)
scrape=$(bash -c "exec 3<>/dev/tcp/${metrics_hostport%:*}/${metrics_hostport##*:} \
  && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && timeout 5 cat <&3")
for family in sqp_shard_queries_total sqp_shard_retries_total \
              sqp_shard_unavailable_total sqp_shard_breaker_state; do
  if ! grep -q "^$family{" <<<"$scrape"; then
    echo "smoke error: /metrics scrape is missing the $family family" >&2
    exit 1
  fi
done
tripped=$(grep -c '^sqp_shard_breaker_state{[^}]*} [12]$' <<<"$scrape" || true)
if [[ "$tripped" -ne 1 ]]; then
  echo "smoke error: expected exactly 1 tripped peer breaker, scrape shows $tripped" >&2
  grep '^sqp_shard_breaker_state' <<<"$scrape" >&2 || true
  exit 1
fi
# Orderly drain: coordinator first, then the surviving shards; all exit 0.
kill -INT "$serve_pid"
wait "$serve_pid"
kill -INT "${shard_pids[0]}" "${shard_pids[2]}"
wait "${shard_pids[0]}" "${shard_pids[2]}"
echo "    sharded serving: healthy run clean, SIGKILL degraded to exit 2 + UNAVAILABLE, breaker open on 1 peer, drain clean"

echo "==> enumeration-kernel bench smoke (writes results/BENCH_kernels.json)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench enumeration

echo "==> phase-breakdown bench smoke (writes results/BENCH_phases_smoke.json, asserts span sum ~= wall)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench phases

echo "==> adaptive routing regret smoke (writes results/BENCH_adaptive_smoke.json, asserts adaptive <= 1.5x best-in-hindsight)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench adaptive

echo "==> dynamic equivalence suite (I10: repaired == recomputed at 1/2/4/8 threads; overlay/compaction vs independent rebuild; malformed streams fail closed)"
PROPTEST_CASES=256 cargo test -q --offline --test dynamic_equivalence

echo "==> dynamic bench smoke (writes results/BENCH_dynamic_smoke.json, asserts repair beats re-query and overlay beats rebuild)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench dynamic

echo "==> update-stream smoke (sqp update: mixed update/query traffic, metrics, materialized --out)"
"$sqp" generate --kind synthetic --graphs 2 --vertices 40 --labels 6 --seed 11 \
  --out "$smoke_dir/dyn.bin" >/dev/null
"$sqp" queries --db "$smoke_dir/dyn.bin" --edges 2 --count 1 --seed 3 \
  --out "$smoke_dir/dynq.txt" >/dev/null
printf 'av 1\nae 40 0\n--\nquery 0\nrv 3\n--\n' > "$smoke_dir/updates.txt"
"$sqp" update --db "$smoke_dir/dyn.bin" --queries "$smoke_dir/dynq.txt" --updates "$smoke_dir/updates.txt" \
  --out "$smoke_dir/dyn2.bin" --metrics-out "$smoke_dir/dyn.prom" > "$smoke_dir/update.out"
grep -q '^applied 3 updates in 2 batches' "$smoke_dir/update.out" || {
  echo "smoke error: sqp update did not report 3 applied updates in 2 batches" >&2; exit 1; }
grep -q '^sqp_updates_applied_total 3$' "$smoke_dir/dyn.prom" || {
  echo "smoke error: sqp update metrics missing sqp_updates_applied_total 3" >&2; exit 1; }
"$sqp" stats --db "$smoke_dir/dyn2.bin" >/dev/null || {
  echo "smoke error: materialized --out database failed to load" >&2; exit 1; }
# A malformed update line must fail closed with exit 1.
set +e
printf 'frob 1 2\n--\n' | "$sqp" update --db "$smoke_dir/dyn.bin" --watch >/dev/null 2>&1
malformed_rc=$?
set -e
if [[ "$malformed_rc" -ne 1 ]]; then
  echo "smoke error: malformed update stream must exit 1 (got $malformed_rc)" >&2
  exit 1
fi
echo "    update stream: 2 batches applied, metrics written, materialized db loads, malformed line -> exit 1"

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "$fast" == 0 ]]; then
  echo "==> cargo clippy (all targets, -D warnings)"
  cargo clippy --offline --workspace --all-targets -- -D warnings
fi

echo "CI gate passed."
