#!/usr/bin/env bash
# Tier-1 verification gate. Run from the repository root:
#
#   scripts/ci.sh            # full gate: build, test, fmt, clippy
#   scripts/ci.sh --fast     # skip clippy (quick pre-commit check)
#
# The build environment has no crates.io access; every external dependency is
# vendored under vendor/, so all steps run with --offline.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> io robustness corpus (malformed t/v/e inputs)"
cargo test -q --offline --test io_robustness

echo "==> chaos suite (fixed seeds, 1/2/4/8 threads; breaker lifecycle, drain, serving determinism)"
# Deterministic fault injection: seeds pinned in tests/chaos.rs and
# EXPERIMENTS.md. PROPTEST_CASES bounds the randomized isolation property
# and the serving-determinism property.
PROPTEST_CASES=32 cargo test -q --offline --test chaos

echo "==> kernel equivalence (all kernels x 1/2/4/8 threads, bitmap memory accounting)"
PROPTEST_CASES=16 cargo test -q --offline --test kernel_equivalence

echo "==> kernel equivalence, forced scalar fallback (SQP_FORCE_SCALAR=1: simd kernel must degrade to merge, not diverge)"
SQP_FORCE_SCALAR=1 PROPTEST_CASES=16 cargo test -q --offline --test kernel_equivalence

echo "==> calibration bench smoke (writes results/BENCH_calibration_smoke.json)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench calibration

echo "==> oracle equivalence sweep (all matchers + engines vs brute oracle, pool at 1/2/4/8 threads)"
PROPTEST_CASES=256 cargo test -q --offline --test oracle_equivalence

echo "==> metrics format (golden exposition file, histogram properties, deterministic phase clocks)"
cargo test -q --offline --test metrics_format

echo "==> supervision suite (wedge escalation at 1/2/4/8 threads, journal torn-tail property, resume skip)"
PROPTEST_CASES=32 cargo test -q --offline --test supervision

echo "==> kill-then-resume smoke (journaled run killed mid-flight; --resume re-runs only the incomplete tail)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
sqp=target/release/sqp
"$sqp" generate --kind synthetic --graphs 30 --vertices 12 --labels 4 --seed 5 \
  --out "$smoke_dir/db.bin" >/dev/null
"$sqp" queries --db "$smoke_dir/db.bin" --edges 4 --count 12 --seed 9 \
  --out "$smoke_dir/q.txt" >/dev/null
# First run: every matcher filter call is slowed so the run is guaranteed to
# still be in flight when SIGKILL lands mid-set.
timeout -s KILL 2 "$sqp" query --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --threads 2 --chaos-slow-ms 40 --journal "$smoke_dir/run.journal" >/dev/null 2>&1 || true
done_before=$(wc -l < "$smoke_dir/run.journal")
if [[ "$done_before" -ge 12 ]]; then
  echo "smoke error: first run finished all 12 queries before the kill; nothing to resume" >&2
  exit 1
fi
# Resumed run (no slowdown) must finish the set, re-running only the tail.
"$sqp" query --db "$smoke_dir/db.bin" --queries "$smoke_dir/q.txt" \
  --threads 2 --journal "$smoke_dir/run.journal" --resume >/dev/null
total=$(wc -l < "$smoke_dir/run.journal")
uniq_fps=$(awk '{print $3}' "$smoke_dir/run.journal" | sort | uniq -d | wc -l)
if [[ "$total" -ne 12 || "$uniq_fps" -ne 0 ]]; then
  echo "smoke error: expected 12 unique journal records (got $total lines, $uniq_fps duplicated fingerprints) — resume re-ran completed work" >&2
  exit 1
fi
echo "    kill-then-resume: $done_before completed before kill, $((12 - done_before)) resumed, no duplicates"

echo "==> enumeration-kernel bench smoke (writes results/BENCH_kernels.json)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench enumeration

echo "==> phase-breakdown bench smoke (writes results/BENCH_phases_smoke.json, asserts span sum ~= wall)"
SQP_BENCH_SMOKE=1 cargo bench --offline -p sqp-bench --bench phases

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "$fast" == 0 ]]; then
  echo "==> cargo clippy (all targets, -D warnings)"
  cargo clippy --offline --workspace --all-targets -- -D warnings
fi

echo "CI gate passed."
