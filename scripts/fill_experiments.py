#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from a `repro --experiment all` log.

Usage: python3 scripts/fill_experiments.py <repro-stdout-log>

Each {{KEY}} placeholder in EXPERIMENTS.md is replaced with the matching
table block from the log (the `== title ==` sections printed by `repro`).
"""
import re
import sys

SECTIONS = {
    "TABLE4": "Table IV: Statistics of the real-world-like datasets",
    "TABLE5": "Table V: Query sets on AIDS-like",
    "TABLE6": "Table VI: Indexing time (seconds)",
    "TABLE7": "Table VII: Memory cost (MB)",
    "FIG2": "Figure 2: Filtering precision — AIDS-like",
    "FIG3": "Figure 3: Filtering time (ms) — AIDS-like",
    "FIG4": "Figure 4: Verification time (ms) — PPI-like",
    "FIG5": "Figure 5: Per SI test time (ms) — PPI-like",
    "FIG6": "Figure 6: Candidate graphs |C(q)| — AIDS-like",
    "FIG7": "Figure 7: Query time (ms) — PPI-like",
}

# Multi-panel (sweep) sections: concatenate all four panels.
SWEEPS = {
    "TABLE8": "Table VIII: Indexing time (seconds), vary",
    "TABLE9": "Table IX: Memory cost (MB), vary",
    "FIG8": "Figure 8: Filtering precision, vary",
    "FIG9": "Figure 9: Filtering time (ms), vary",
}


def blocks(log: str):
    """Yields (title, body) for each `== title ==` block."""
    parts = re.split(r"^== (.*?) ==$", log, flags=re.M)
    for i in range(1, len(parts) - 1, 2):
        yield parts[i], parts[i + 1].strip("\n")


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    log = open(sys.argv[1]).read()
    found = dict(blocks(log))

    md = open("EXPERIMENTS.md").read()
    for key, title in SECTIONS.items():
        body = found.get(title)
        if body is None:
            print(f"warning: section '{title}' not in log; leaving {{{{{key}}}}}")
            continue
        md = md.replace("{{" + key + "}}", f"{title}\n{body}")
    for key, prefix in SWEEPS.items():
        panels = [f"{t}\n{b}" for t, b in found.items() if t.startswith(prefix)]
        if not panels:
            print(f"warning: no panels for '{prefix}'; leaving {{{{{key}}}}}")
            continue
        md = md.replace("{{" + key + "}}", "\n\n".join(panels))
    open("EXPERIMENTS.md", "w").write(md)
    leftover = re.findall(r"\{\{\w+\}\}", md)
    if leftover:
        print("unfilled placeholders:", leftover)
        return 1
    print("EXPERIMENTS.md filled")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
